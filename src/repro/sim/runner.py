"""Round-accurate simulator of the synchronous message-passing model.

Two execution modes mirror the paper's two settings:

* :data:`Mode.CONGEST` — the classic synchronous CONGEST model of
  Section 1.1.  Every node is conceptually awake every round.  As a pure
  simulation optimization, node algorithms may *sleep* through rounds in
  which they have nothing to do; the runner then buffers their messages and
  wakes them on arrival ("wake-on-message").  This changes no observable of
  the model — time, message and congestion accounting are exactly those of
  an always-awake execution — it only skips no-op Python work.  The energy
  metric is *not meaningful* in this mode.

* :data:`Mode.SLEEPING` — the sleeping model of Section 1.2.  A node is
  awake only in rounds it scheduled; **messages sent to a sleeping node are
  lost** (recorded in ``Metrics.lost_messages``) and there is no
  wake-on-message.  The awake-round count per node is the energy complexity.

Rounds are lock-step.  In round ``r`` every awake node consumes the messages
delivered to it in earlier rounds (its mailbox), updates state, and sends at
most ``edge_capacity`` messages per incident directed edge.  Messages sent in
round ``r`` are available from round ``r + 1``.

``round_width`` supports the paper's *megarounds* (Section 3.1.3): when
``k`` logical subroutines share edges, the paper groups ``k`` real rounds
into one megaround and a node awake in any of them stays awake for all of
them.  Setting ``round_width=k, edge_capacity=k`` makes one simulated round
stand for one megaround: the rounds/energy metrics advance by ``k`` per
simulated round and up to ``k`` messages may cross an edge (one per real
slot).  All paper-facing metrics remain exact.
"""

from __future__ import annotations

import enum
import heapq
from collections import Counter

from ..graphs import Graph
from .metrics import Metrics

__all__ = ["Mode", "Context", "NodeAlgorithm", "Runner", "SimulationError"]


class Mode(enum.Enum):
    """Execution semantics: classic CONGEST vs the sleeping (energy) model."""

    CONGEST = "congest"
    SLEEPING = "sleeping"


class SimulationError(RuntimeError):
    """Raised on protocol violations (capacity breach, bad target, overrun)."""


#: Sentinel for :meth:`Context.idle` — sleep with no scheduled wake.
_IDLE = -1


class Context:
    """Per-node handle through which an algorithm interacts with the network.

    Exposes the node's local view only: its id, its incident edges and their
    weights, the current round, and the actions *send*, *sleep*, *halt*.
    Algorithms must not touch the graph globally — that is what keeps the
    implementations honest distributed algorithms.
    """

    __slots__ = ("node", "round", "_runner", "_neighbors", "_weights", "_next_wake", "_halted")

    def __init__(self, runner: "Runner", node: object) -> None:
        self.node = node
        self.round = 0
        self._runner = runner
        self._neighbors = tuple(runner.graph.neighbors(node))
        self._weights = {v: runner.graph.weight(node, v) for v in self._neighbors}
        self._next_wake: int | None = None
        self._halted = False

    # -- local topology -------------------------------------------------
    @property
    def neighbors(self) -> tuple:
        return self._neighbors

    def weight(self, neighbor: object) -> int:
        return self._weights[neighbor]

    @property
    def degree(self) -> int:
        return len(self._neighbors)

    # -- actions ---------------------------------------------------------
    def send(self, neighbor: object, payload: object) -> None:
        """Send ``payload`` to ``neighbor`` this round (arrives next round)."""
        if neighbor not in self._weights:
            raise SimulationError(f"{self.node!r} tried to message non-neighbor {neighbor!r}")
        self._runner._enqueue(self.node, neighbor, payload)

    def broadcast(self, payload: object) -> None:
        """Send ``payload`` to every neighbor (one message per edge)."""
        for v in self._neighbors:
            self.send(v, payload)

    def wake_at(self, round_number: int) -> None:
        """Sleep after this round and wake at the given absolute round."""
        if round_number <= self.round:
            raise SimulationError(
                f"{self.node!r} scheduled wake at {round_number} <= current round {self.round}"
            )
        if self._next_wake is None or round_number < self._next_wake:
            self._next_wake = round_number

    def sleep_for(self, rounds: int) -> None:
        """Sleep for ``rounds`` rounds (wake at ``round + rounds``)."""
        self.wake_at(self.round + rounds)

    def idle(self) -> None:
        """Sleep with no scheduled wake.

        In CONGEST mode an arriving message wakes the node (this is the
        no-op-skipping optimization; the node is conceptually awake).  In the
        SLEEPING model an idle node genuinely never wakes again — use only
        when the protocol guarantees nothing more is coming.
        """
        self._next_wake = _IDLE

    def halt(self) -> None:
        """Finish: never wake again.  Output must already be in local state."""
        self._halted = True


class NodeAlgorithm:
    """Base class for one node's protocol logic.

    Subclasses implement :meth:`on_round`.  The same instance persists for
    the whole execution, so instance attributes are the node's local memory.
    By default a node stays awake every round until it calls ``ctx.halt()``
    or schedules a wake; override behavior entirely in ``on_round``.
    """

    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        """Handle one awake round.  ``inbox`` holds ``(sender, payload)`` pairs."""
        raise NotImplementedError


class Runner:
    """Executes one protocol over a graph and meters it.

    Parameters
    ----------
    graph:
        The network.  Every node of the graph must have an algorithm.
    algorithms:
        Mapping node -> :class:`NodeAlgorithm` instance.
    mode:
        :data:`Mode.CONGEST` (buffered, wake-on-message) or
        :data:`Mode.SLEEPING` (lossy, strict schedules).
    round_width / edge_capacity:
        Megaround support; see the module docstring.
    metrics:
        Optional shared accumulator (for phase composition).  A fresh one is
        created if omitted.
    max_rounds:
        Hard safety bound; exceeding it raises :class:`SimulationError`.
    """

    def __init__(
        self,
        graph: Graph,
        algorithms: dict,
        mode: Mode = Mode.CONGEST,
        *,
        round_width: int = 1,
        edge_capacity: int = 1,
        metrics: Metrics | None = None,
        max_rounds: int = 10_000_000,
    ) -> None:
        missing = [u for u in graph.nodes() if u not in algorithms]
        if missing:
            raise SimulationError(f"nodes without an algorithm: {missing[:5]}")
        self.graph = graph
        self.algorithms = algorithms
        self.mode = mode
        self.round_width = round_width
        self.edge_capacity = edge_capacity
        self.metrics = metrics if metrics is not None else Metrics()
        self.max_rounds = max_rounds
        self._contexts = {u: Context(self, u) for u in graph.nodes()}
        self._mailboxes: dict[object, list] = {u: [] for u in graph.nodes()}
        self._outbox: list[tuple[object, object, object]] = []
        self._edge_load: Counter = Counter()

    # ------------------------------------------------------------------
    def _enqueue(self, src: object, dst: object, payload: object) -> None:
        self._edge_load[(src, dst)] += 1
        if self._edge_load[(src, dst)] > self.edge_capacity:
            raise SimulationError(
                f"edge capacity exceeded: {src!r}->{dst!r} sent "
                f"{self._edge_load[(src, dst)]} messages in one round "
                f"(capacity {self.edge_capacity})"
            )
        self._outbox.append((src, dst, payload))

    # ------------------------------------------------------------------
    def run(self) -> Metrics:
        """Simulate until quiescence; return the (possibly shared) metrics."""
        self._wake_heap: list[int] = []
        self._wake_rounds: dict[int, set] = {}
        # next_wake_of[u] is the earliest scheduled wake of u, or None if u
        # is idle (wakeable by message in CONGEST mode) or halted.
        self._next_wake_of: dict[object, int | None] = {}
        for u in self.graph.nodes():
            self._schedule(u, 0)
        last_round = -1

        while self._wake_heap:
            r = heapq.heappop(self._wake_heap)
            bucket = self._wake_rounds.pop(r, set())
            # Filter stale entries (a node rescheduled to an earlier round
            # leaves its old bucket entry behind) and halted nodes.
            awake = {
                u
                for u in bucket
                if self._next_wake_of.get(u) == r and not self._contexts[u]._halted
            }
            if not awake:
                continue
            if r >= self.max_rounds:
                raise SimulationError(f"exceeded max_rounds={self.max_rounds}")
            last_round = r

            # --- node steps -------------------------------------------
            # Expose the in-phase round to metrics subclasses that stamp
            # events (awake records and message sends) with time.
            self.metrics.current_round = r
            self._outbox = []
            self._edge_load = Counter()
            for u in sorted(awake, key=repr):
                ctx = self._contexts[u]
                ctx.round = r
                ctx._next_wake = None
                self._next_wake_of[u] = None
                inbox = self._mailboxes[u]
                self._mailboxes[u] = []
                self.algorithms[u].on_round(ctx, inbox)
                self.metrics.record_awake(u, self.round_width)

            # --- next wakes (before delivery, so wake-on-message knows
            # which recipients are idle) --------------------------------
            for u in awake:
                ctx = self._contexts[u]
                if ctx._halted or ctx._next_wake is _IDLE:
                    continue
                nxt = ctx._next_wake if ctx._next_wake is not None else r + 1
                self._schedule(u, nxt)

            # --- delivery ---------------------------------------------
            for src, dst, payload in self._outbox:
                if self.mode is Mode.SLEEPING:
                    # Sleeping model: a message reaches its target only if the
                    # target was awake in the round it was sent (Section 1.2).
                    delivered = dst in awake and not self._contexts[dst]._halted
                    self.metrics.record_send(src, dst, delivered)
                    if delivered:
                        self._mailboxes[dst].append((src, payload))
                else:
                    # CONGEST: every node is conceptually awake; messages are
                    # never lost.  A halted node discards arrivals silently.
                    self.metrics.record_send(src, dst, True)
                    if not self._contexts[dst]._halted:
                        self._mailboxes[dst].append((src, payload))
                        # Wake-on-message: recipients process fresh input next
                        # round.  Protocols must recompute their wake schedule
                        # on every call (they may be woken "early").
                        self._schedule(dst, r + 1)

        self.metrics.record_rounds((last_round + 1) * self.round_width)
        return self.metrics

    def _schedule(self, node: object, round_number: int) -> None:
        current = self._next_wake_of.get(node)
        if current is not None and current <= round_number:
            return
        self._next_wake_of[node] = round_number
        bucket = self._wake_rounds.get(round_number)
        if bucket is None:
            self._wake_rounds[round_number] = {node}
            heapq.heappush(self._wake_heap, round_number)
        else:
            bucket.add(node)
