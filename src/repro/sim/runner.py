"""Round-accurate simulator of the synchronous message-passing model.

Two execution modes mirror the paper's two settings:

* :data:`Mode.CONGEST` — the classic synchronous CONGEST model of
  Section 1.1.  Every node is conceptually awake every round.  As a pure
  simulation optimization, node algorithms may *sleep* through rounds in
  which they have nothing to do; the runner then buffers their messages and
  wakes them on arrival ("wake-on-message").  This changes no observable of
  the model — time, message and congestion accounting are exactly those of
  an always-awake execution — it only skips no-op Python work.  The energy
  metric is *not meaningful* in this mode.

* :data:`Mode.SLEEPING` — the sleeping model of Section 1.2.  A node is
  awake only in rounds it scheduled; **messages sent to a sleeping node are
  lost** (recorded in ``Metrics.lost_messages``) and there is no
  wake-on-message.  The awake-round count per node is the energy complexity.

Rounds are lock-step.  In round ``r`` every awake node consumes the messages
delivered to it in earlier rounds (its mailbox), updates state, and sends at
most ``edge_capacity`` messages per incident directed edge.  Messages sent in
round ``r`` are available from round ``r + 1``.

``round_width`` supports the paper's *megarounds* (Section 3.1.3): when
``k`` logical subroutines share edges, the paper groups ``k`` real rounds
into one megaround and a node awake in any of them stays awake for all of
them.  Setting ``round_width=k, edge_capacity=k`` makes one simulated round
stand for one megaround: the rounds/energy metrics advance by ``k`` per
simulated round and up to ``k`` messages may cross an edge (one per real
slot).  All paper-facing metrics remain exact.

Engine
------
The runner executes on the frozen :class:`~repro.graphs.IndexedGraph` view
of the network (built once per graph and cached on it), so all per-round
bookkeeping is integer-indexed array work:

* mailboxes are a flat ``list`` indexed by node index, not a dict;
* the wake schedule is a bucketed ring (calendar queue) over upcoming
  rounds with an overflow map for far-future wakes — no heap churn and no
  per-round set filtering;
* per-round edge-capacity accounting is a flat per-port counter array reset
  via a touched-list, not a fresh ``Counter`` per round;
* awake nodes step in node-index order (graph insertion order), which is
  deterministic and replaces the old ``sorted(awake, key=repr)`` hot path.

Semantics are identical to :class:`repro.sim.reference.ReferenceRunner`
(the retained original implementation); the differential tests in
``tests/test_runner_differential.py`` pin the two engines to byte-identical
metrics.
"""

from __future__ import annotations

import enum

from ..graphs import Graph
from ..graphs.indexed import IndexedGraph
from .metrics import Metrics

__all__ = ["Mode", "Context", "NodeAlgorithm", "Runner", "SimulationError"]


class Mode(enum.Enum):
    """Execution semantics: classic CONGEST vs the sleeping (energy) model."""

    CONGEST = "congest"
    SLEEPING = "sleeping"


class SimulationError(RuntimeError):
    """Raised on protocol violations (capacity breach, bad target, overrun)."""


#: Sentinel for :meth:`Context.idle` — sleep with no scheduled wake.
_IDLE = -1

#: ``next_wake`` marker for "no live wake scheduled".
_NONE = -1

#: Ring size (power of two).  Wakes within this many rounds of the current
#: one live in the ring; anything further sits in the overflow map until the
#: window slides over it.
_RING = 1024
_MASK = _RING - 1


class Context:
    """Per-node handle through which an algorithm interacts with the network.

    Exposes the node's local view only: its id, its incident edges and their
    weights, the current round, and the actions *send*, *sleep*, *halt*.
    Algorithms must not touch the graph globally — that is what keeps the
    implementations honest distributed algorithms.
    """

    __slots__ = (
        "node",
        "round",
        "_runner",
        "_index",
        "_neighbors",
        "_weights",
        "_ports",
        "_next_wake",
        "_halted",
    )

    def __init__(self, runner: "Runner", node: object, index: int, view: tuple) -> None:
        self.node = node
        self.round = 0
        self._runner = runner
        self._index = index
        # Shared, read-only per-node structures from IndexedGraph.node_views()
        # — built once per graph, reused by every runner over it.
        self._neighbors, self._weights, self._ports = view
        self._next_wake: int | None = None
        self._halted = False

    # -- local topology -------------------------------------------------
    @property
    def neighbors(self) -> tuple:
        return self._neighbors

    def weight(self, neighbor: object) -> int:
        return self._weights[neighbor]

    @property
    def degree(self) -> int:
        return len(self._neighbors)

    # -- actions ---------------------------------------------------------
    def send(self, neighbor: object, payload: object) -> None:
        """Send ``payload`` to ``neighbor`` this round (arrives next round)."""
        port = self._ports.get(neighbor)
        if port is None:
            raise SimulationError(f"{self.node!r} tried to message non-neighbor {neighbor!r}")
        port_id, dst_index, _weight = port
        runner = self._runner
        load = runner._edge_load
        count = load[port_id] + 1
        if count > runner.edge_capacity:
            raise SimulationError(
                f"edge capacity exceeded: {self.node!r}->{neighbor!r} sent "
                f"{count} messages in one round "
                f"(capacity {runner.edge_capacity})"
            )
        load[port_id] = count
        if count == 1:
            runner._touched.append(port_id)
        runner._outbox.append((self._index, dst_index, payload))

    def broadcast(self, payload: object) -> None:
        """Send ``payload`` to every neighbor (one message per edge)."""
        for v in self._neighbors:
            self.send(v, payload)

    def wake_at(self, round_number: int) -> None:
        """Sleep after this round and wake at the given absolute round."""
        if round_number <= self.round:
            raise SimulationError(
                f"{self.node!r} scheduled wake at {round_number} <= current round {self.round}"
            )
        if self._next_wake is None or round_number < self._next_wake:
            self._next_wake = round_number

    def sleep_for(self, rounds: int) -> None:
        """Sleep for ``rounds`` rounds (wake at ``round + rounds``)."""
        self.wake_at(self.round + rounds)

    def idle(self) -> None:
        """Sleep with no scheduled wake.

        In CONGEST mode an arriving message wakes the node (this is the
        no-op-skipping optimization; the node is conceptually awake).  In the
        SLEEPING model an idle node genuinely never wakes again — use only
        when the protocol guarantees nothing more is coming.
        """
        self._next_wake = _IDLE

    def halt(self) -> None:
        """Finish: never wake again.  Output must already be in local state."""
        self._halted = True


class NodeAlgorithm:
    """Base class for one node's protocol logic.

    Subclasses implement :meth:`on_round`.  The same instance persists for
    the whole execution, so instance attributes are the node's local memory.
    By default a node stays awake every round until it calls ``ctx.halt()``
    or schedules a wake; override behavior entirely in ``on_round``.
    """

    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        """Handle one awake round.  ``inbox`` holds ``(sender, payload)`` pairs."""
        raise NotImplementedError


class Runner:
    """Executes one protocol over a graph and meters it.

    Parameters
    ----------
    graph:
        The network — a :class:`~repro.graphs.Graph` (its cached
        :class:`~repro.graphs.IndexedGraph` view is used) or an
        :class:`~repro.graphs.IndexedGraph` directly.  Every node must have
        an algorithm.
    algorithms:
        Mapping node label -> :class:`NodeAlgorithm` instance.
    mode:
        :data:`Mode.CONGEST` (buffered, wake-on-message) or
        :data:`Mode.SLEEPING` (lossy, strict schedules).
    round_width / edge_capacity:
        Megaround support; see the module docstring.
    metrics:
        Optional shared accumulator (for phase composition).  A fresh one is
        created if omitted.
    max_rounds:
        Hard safety bound; exceeding it raises :class:`SimulationError`.
    """

    def __init__(
        self,
        graph: Graph | IndexedGraph,
        algorithms: dict,
        mode: Mode = Mode.CONGEST,
        *,
        round_width: int = 1,
        edge_capacity: int = 1,
        metrics: Metrics | None = None,
        max_rounds: int = 10_000_000,
    ) -> None:
        indexed = graph if isinstance(graph, IndexedGraph) else IndexedGraph.of(graph)
        missing = [u for u in indexed.labels if u not in algorithms]
        if missing:
            raise SimulationError(f"nodes without an algorithm: {missing[:5]}")
        self.graph = graph
        self.indexed = indexed
        self.algorithms = algorithms
        self.mode = mode
        self.round_width = round_width
        self.edge_capacity = edge_capacity
        self.metrics = metrics if metrics is not None else Metrics()
        self.max_rounds = max_rounds
        views = indexed.node_views()
        self._contexts_by_index = [
            Context(self, label, i, views[i]) for i, label in enumerate(indexed.labels)
        ]
        self._algorithms_by_index = [algorithms[label] for label in indexed.labels]
        self._mailboxes: list[list] = [[] for _ in range(indexed.num_nodes)]
        self._outbox: list[tuple[int, int, object]] = []
        self._edge_load: list[int] = [0] * len(indexed.nbr)
        self._touched: list[int] = []

    # ------------------------------------------------------------------
    def run(self) -> Metrics:
        """Simulate until quiescence; return the (possibly shared) metrics."""
        indexed = self.indexed
        n = indexed.num_nodes
        labels = indexed.labels
        contexts = self._contexts_by_index
        algorithms = self._algorithms_by_index
        mailboxes = self._mailboxes
        outbox = self._outbox
        edge_load = self._edge_load
        touched = self._touched
        metrics = self.metrics
        sleeping = self.mode is Mode.SLEEPING
        # Bulk counter updates are only valid for a plain Metrics; subclasses
        # (TracingMetrics etc.) override the record_* hooks and get the
        # per-event calls — same accumulated state either way.
        fast = type(metrics) is Metrics

        # Lazily-populated ring: one flat allocation, buckets created on
        # first use (runners are created by the thousand in the recursive
        # algorithms, so per-run setup must stay O(n + m), not O(ring)).
        ring: list[list[int] | None] = [None] * _RING
        far: dict[int, list[int]] = {}
        next_wake = [0] * n
        scheduled = n
        ring_count = n
        if n:
            ring[0] = list(range(n))
        # last round any node woke this round (for sleeping-mode delivery).
        awake_stamp = [-1] * n
        last_round = -1
        r = 0

        while scheduled:
            if not ring_count:
                # Every pending wake is beyond the ring window — jump the
                # clock to the earliest one and slide the window over it.
                r = min(far)
                horizon = r + _RING
                for s in [s for s in far if s < horizon]:
                    entries = far.pop(s)
                    slot = s & _MASK
                    if ring[slot]:
                        ring[slot].extend(entries)
                    else:
                        ring[slot] = entries
                    ring_count += len(entries)
            bucket = ring[r & _MASK]
            if bucket:
                ring[r & _MASK] = None
                ring_count -= len(bucket)
                # Keep live entries only: a node rescheduled to a different
                # round (or already consumed) leaves a stale entry behind.
                awake: list[int] = []
                for i in bucket:
                    if next_wake[i] == r:
                        next_wake[i] = _NONE
                        scheduled -= 1
                        awake.append(i)
                if awake:
                    if r >= self.max_rounds:
                        raise SimulationError(f"exceeded max_rounds={self.max_rounds}")
                    last_round = r
                    awake.sort()

                    # --- node steps (deterministic node-index order) ------
                    metrics.current_round = r
                    if sleeping:
                        for i in awake:
                            awake_stamp[i] = r
                    for i in awake:
                        ctx = contexts[i]
                        ctx.round = r
                        ctx._next_wake = None
                        inbox = mailboxes[i]
                        mailboxes[i] = []
                        algorithms[i].on_round(ctx, inbox)
                    if fast:
                        width = self.round_width
                        if width == 1:
                            metrics.awake_rounds.update([labels[i] for i in awake])
                        else:
                            awake_rounds = metrics.awake_rounds
                            for i in awake:
                                awake_rounds[labels[i]] += width
                    else:
                        for i in awake:
                            metrics.record_awake(labels[i], self.round_width)

                    # --- next wakes (before delivery, so wake-on-message
                    # sees the post-round schedule) ------------------------
                    nxt_round = r + 1
                    in_window = r + _RING
                    for i in awake:
                        ctx = contexts[i]
                        wake = ctx._next_wake
                        if ctx._halted or wake is _IDLE:
                            continue
                        s = wake if wake is not None else nxt_round
                        next_wake[i] = s
                        scheduled += 1
                        if s < in_window:
                            slot = s & _MASK
                            slot_bucket = ring[slot]
                            if slot_bucket is None:
                                ring[slot] = [i]
                            else:
                                slot_bucket.append(i)
                            ring_count += 1
                        else:
                            far.setdefault(s, []).append(i)

                    # --- delivery -----------------------------------------
                    if outbox:
                        if sleeping:
                            # A message reaches its target only if the target
                            # was awake in the round it was sent (Sec 1.2).
                            if fast:
                                metrics.edge_messages.update(
                                    [(labels[s], labels[d]) for s, d, _ in outbox]
                                )
                                lost = 0
                                for src_i, dst_i, payload in outbox:
                                    if awake_stamp[dst_i] == r and not contexts[dst_i]._halted:
                                        mailboxes[dst_i].append((labels[src_i], payload))
                                    else:
                                        lost += 1
                                metrics.total_messages += len(outbox)
                                metrics.lost_messages += lost
                            else:
                                for src_i, dst_i, payload in outbox:
                                    delivered = (
                                        awake_stamp[dst_i] == r
                                        and not contexts[dst_i]._halted
                                    )
                                    metrics.record_send(labels[src_i], labels[dst_i], delivered)
                                    if delivered:
                                        mailboxes[dst_i].append((labels[src_i], payload))
                        else:
                            # CONGEST: never lost; a halted node discards
                            # arrivals silently, others wake-on-message.
                            if fast:
                                metrics.edge_messages.update(
                                    [(labels[s], labels[d]) for s, d, _ in outbox]
                                )
                            for src_i, dst_i, payload in outbox:
                                src = labels[src_i]
                                if not fast:
                                    metrics.record_send(src, labels[dst_i], True)
                                dst_ctx = contexts[dst_i]
                                if not dst_ctx._halted:
                                    mailboxes[dst_i].append((src, payload))
                                    cur = next_wake[dst_i]
                                    if cur == _NONE or cur > nxt_round:
                                        if cur == _NONE:
                                            scheduled += 1
                                        next_wake[dst_i] = nxt_round
                                        slot = nxt_round & _MASK
                                        slot_bucket = ring[slot]
                                        if slot_bucket is None:
                                            ring[slot] = [dst_i]
                                        else:
                                            slot_bucket.append(dst_i)
                                        ring_count += 1
                            if fast:
                                metrics.total_messages += len(outbox)
                        outbox.clear()
                        for port_id in touched:
                            edge_load[port_id] = 0
                        touched.clear()

            # Slide the window one round; far-future wakes that now fit move
            # into the ring.
            r += 1
            if far:
                entries = far.pop(r + _RING - 1, None)
                if entries is not None:
                    slot = (r + _RING - 1) & _MASK
                    if ring[slot]:
                        ring[slot].extend(entries)
                    else:
                        ring[slot] = entries
                    ring_count += len(entries)

        self.metrics.record_rounds((last_round + 1) * self.round_width)
        return self.metrics
