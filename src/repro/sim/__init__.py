"""Simulator of the synchronous CONGEST model and its sleeping variant.

Two execution engines share the :class:`NodeAlgorithm`/:class:`Context`/
:class:`Inbox` API: the synchronous :class:`Runner` (lock-step rounds, the
model the paper's guarantees are stated in) and the asynchronous
:class:`EventRunner` (virtual-time event heap, per-edge latency models,
bandwidth/duration stopping conditions).  Under the default unit latency
model the two are differentially identical; :func:`make_runner` plus the
:func:`simulation_engine` context select the engine library-wide.

Both engines honor the seeded fault plane of :mod:`repro.sim.faults`
(message drop/duplication, node crash-restart) — installed per run via
``simulation_engine(..., faults=...)`` and metered into :class:`Metrics`.
"""

from .metrics import Metrics
from .kernels import (
    BatchKernel,
    available_backends,
    current_backend,
    default_backend,
    set_backend,
    use_backend,
)
from .runner import Context, Inbox, Mode, NodeAlgorithm, Runner, SimulationError
from .reference import ReferenceRunner
from .trace import TracingMetrics
from .faults import FaultModel, canonical_fault, parse_fault_model
from .events import (
    EdgeTableLatency,
    EngineStats,
    EventRunner,
    LatencyModel,
    RandomDelayLatency,
    UniformLatency,
    canonical_latency,
    current_engine,
    current_faults,
    fault_horizon_factor,
    latency_bound,
    make_runner,
    parse_latency_model,
    simulation_engine,
)

__all__ = [
    "Metrics",
    "TracingMetrics",
    "Context",
    "Inbox",
    "Mode",
    "NodeAlgorithm",
    "Runner",
    "ReferenceRunner",
    "SimulationError",
    "EventRunner",
    "LatencyModel",
    "UniformLatency",
    "RandomDelayLatency",
    "EdgeTableLatency",
    "parse_latency_model",
    "canonical_latency",
    "FaultModel",
    "parse_fault_model",
    "canonical_fault",
    "EngineStats",
    "simulation_engine",
    "current_engine",
    "current_faults",
    "fault_horizon_factor",
    "latency_bound",
    "make_runner",
    "BatchKernel",
    "available_backends",
    "current_backend",
    "default_backend",
    "set_backend",
    "use_backend",
]
