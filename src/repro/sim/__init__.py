"""Simulator of the synchronous CONGEST model and its sleeping variant."""

from .metrics import Metrics
from .runner import Context, Inbox, Mode, NodeAlgorithm, Runner, SimulationError
from .reference import ReferenceRunner
from .trace import TracingMetrics

__all__ = [
    "Metrics",
    "TracingMetrics",
    "Context",
    "Inbox",
    "Mode",
    "NodeAlgorithm",
    "Runner",
    "ReferenceRunner",
    "SimulationError",
]
