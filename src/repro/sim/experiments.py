"""Scenario registry and parallel experiment orchestrator.

Every result in the paper is a *metered execution*: run a protocol over a
graph family at a sweep of sizes and read off the four complexity currencies
(rounds, messages, congestion, energy).  This module turns that pattern into
data:

* a **scenario** is a named triple *(graph family x algorithm x params)* —
  e.g. ``sssp/er`` is "the paper's SSSP on weighted random connected
  graphs".  Scenarios live in a registry (:func:`register_scenario`,
  :func:`get_scenario`, :func:`list_scenarios`) so new workloads are one
  registration, not a new benchmark harness;
* an **algorithm driver** adapts one library entry point to the uniform
  ``driver(graph, seed, metrics)`` shape and *self-verifies* against the
  sequential oracle where one exists (:func:`register_algorithm`);
* :func:`run_sweep` fans the cross product *(scenario x size x seed)* across
  ``multiprocessing`` workers — each run is independent and gets an explicit
  per-run seed — and collects one tidy row per run.  The result table is a
  pure function of the task list, so the same seeds yield an identical table
  for any worker count (results come back in task order, timing fields are
  deliberately excluded).

The CLI front end is ``python -m repro sweep`` (``--smoke`` for the tiny CI
entry); :mod:`repro.analysis.sweeps` renders tables and fits scaling laws
over the rows.

Example::

    from repro.sim.experiments import run_sweep
    rows = run_sweep(["sssp/er", "bellman-ford/er"], sizes=(16, 32, 64),
                     seeds=(0, 1), workers=4)

Notes on parallelism: workers are forked, so scenarios registered at import
time (including any registered by your own modules before the sweep starts)
are visible to them.  On platforms without ``fork`` the sweep silently runs
sequentially — same rows, just slower.

Graph caching: scenario cells that share a ``(family, max_weight, n, seed)``
instance — e.g. ``sssp/er`` and ``bellman-ford/er`` at the same size and
seed — reuse one graph object per worker instead of regenerating it, which
also carries the frozen :class:`~repro.graphs.IndexedGraph` view across
cells.  ``run_sweep`` groups the task list by instance key so each group
lands on one worker (maximizing cache hits), then restores cross-product
row order before returning — the tidy table is bit-identical at any worker
count, cache hits or not.  Algorithms must treat graphs as read-only (the
library-wide append-only convention); :func:`clear_graph_cache` drops the
cache (mostly for tests).
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from ..graphs import generators
from .metrics import Metrics

__all__ = [
    "Scenario",
    "SweepError",
    "register_algorithm",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "list_algorithms",
    "run_scenario",
    "run_sweep",
    "smoke_sweep",
    "clear_graph_cache",
    "ROW_FIELDS",
]

#: Column order of a tidy sweep row (all deterministic — no wall-clock).
ROW_FIELDS = (
    "scenario",
    "family",
    "algorithm",
    "n",
    "m",
    "seed",
    "rounds",
    "messages",
    "lost_messages",
    "congestion",
    "energy",
)


class SweepError(RuntimeError):
    """Raised for unknown scenarios/algorithms or in-run verification failures."""


@dataclass(frozen=True)
class Scenario:
    """One registered workload: a graph family, an algorithm, and parameters.

    ``family`` keys into :data:`repro.graphs.generators.FAMILIES`;
    ``algorithm`` keys into the driver registry.  ``max_weight > 1`` gives
    instances random integer weights in ``[1, max_weight]`` drawn from the
    per-run seed, so every ``(size, seed)`` cell is a distinct instance.
    ``params`` is a tuple of ``(key, value)`` pairs forwarded to the driver
    (kept as a tuple so scenarios stay hashable and picklable).
    """

    name: str
    family: str
    algorithm: str
    max_weight: int = 1
    params: tuple = ()
    description: str = ""

    def build_graph(self, n: int, seed: int):
        return generators.make_family(self.family, n, self.max_weight, seed=seed)


_ALGORITHMS: dict[str, Callable] = {}
_SCENARIOS: dict[str, Scenario] = {}


def register_algorithm(name: str, driver: Callable) -> None:
    """Register ``driver(graph, seed, metrics, **params)`` under ``name``."""
    _ALGORITHMS[name] = driver


def register_scenario(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the registry (replacing any same-named entry)."""
    if scenario.family not in generators.FAMILIES:
        raise SweepError(
            f"scenario {scenario.name!r}: unknown family {scenario.family!r} "
            f"(options: {sorted(generators.FAMILIES)})"
        )
    if scenario.algorithm not in _ALGORITHMS:
        raise SweepError(
            f"scenario {scenario.name!r}: unknown algorithm {scenario.algorithm!r} "
            f"(options: {sorted(_ALGORITHMS)})"
        )
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise SweepError(
            f"unknown scenario {name!r}; registered: {sorted(_SCENARIOS)}"
        ) from None


def list_scenarios() -> list[str]:
    return sorted(_SCENARIOS)


def list_algorithms() -> list[str]:
    return sorted(_ALGORITHMS)


# ----------------------------------------------------------------------
# built-in algorithm drivers (each self-verifies against an oracle)
# ----------------------------------------------------------------------
def _first_node(graph):
    return next(iter(graph.nodes()))


def _check(actual: dict, expected: dict, what: str) -> None:
    if actual != expected:
        bad = [(u, actual.get(u), expected[u]) for u in expected if actual.get(u) != expected[u]]
        raise SweepError(f"{what}: output disagrees with oracle, e.g. {bad[:3]}")


def _drive_sssp(graph, seed: int, metrics: Metrics) -> None:
    from ..core import sssp

    source = _first_node(graph)
    result = sssp(graph, source)
    _check(result.distances, graph.dijkstra([source]), "sssp")
    metrics.merge(result.metrics)


def _drive_cssp(graph, seed: int, metrics: Metrics) -> None:
    from ..core import cssp

    source = _first_node(graph)
    distances, _ = cssp(graph, {source: 0}, metrics=metrics)
    _check(distances, graph.dijkstra([source]), "cssp")


def _drive_bellman_ford(graph, seed: int, metrics: Metrics) -> None:
    from ..baselines import run_bellman_ford

    source = _first_node(graph)
    _check(run_bellman_ford(graph, source, metrics=metrics), graph.dijkstra([source]), "bellman-ford")


def _drive_dijkstra(graph, seed: int, metrics: Metrics) -> None:
    from ..baselines import run_distributed_dijkstra

    source = _first_node(graph)
    _check(
        run_distributed_dijkstra(graph, source, metrics=metrics),
        graph.dijkstra([source]),
        "dijkstra",
    )


def _drive_bfs(graph, seed: int, metrics: Metrics) -> None:
    from ..core import run_bfs

    source = _first_node(graph)
    _check(run_bfs(graph, [source], metrics=metrics), graph.hop_distances([source]), "bfs")


def _drive_energy_bfs(graph, seed: int, metrics: Metrics) -> None:
    """Sleeping-model BFS (Thm 3.8) — the sweep's energy-metric workload."""
    from ..energy.covers import build_layered_cover
    from ..energy.low_energy_bfs import run_low_energy_bfs

    source = _first_node(graph)
    cover = build_layered_cover(graph, graph.num_nodes, base=4, stretch=3)
    distances, _ = run_low_energy_bfs(
        graph, cover, {source: 0}, graph.num_nodes, metrics=metrics
    )
    _check(distances, graph.hop_distances([source]), "energy-bfs")


register_algorithm("sssp", _drive_sssp)
register_algorithm("cssp", _drive_cssp)
register_algorithm("bellman-ford", _drive_bellman_ford)
register_algorithm("dijkstra", _drive_dijkstra)
register_algorithm("bfs", _drive_bfs)
register_algorithm("energy-bfs", _drive_energy_bfs)


# ----------------------------------------------------------------------
# built-in scenarios: the paper's headline comparisons as registry entries
# ----------------------------------------------------------------------
for _scenario in (
    Scenario("sssp/er", "er", "sssp", max_weight=9,
             description="paper SSSP on weighted random connected graphs"),
    Scenario("sssp/grid", "grid", "sssp", max_weight=9,
             description="paper SSSP on weighted grids (D ~ sqrt(n))"),
    Scenario("sssp/path", "path", "sssp", max_weight=9,
             description="paper SSSP on weighted paths (D ~ n)"),
    Scenario("cssp/er", "er", "cssp", max_weight=9,
             description="thresholded CSSP on weighted random graphs"),
    Scenario("bellman-ford/er", "er", "bellman-ford", max_weight=9,
             description="Bellman-Ford baseline on weighted random graphs"),
    Scenario("dijkstra/er", "er", "dijkstra", max_weight=9,
             description="distributed Dijkstra baseline on weighted random graphs"),
    Scenario("bfs/grid", "grid", "bfs",
             description="unweighted CONGEST BFS on grids"),
    Scenario("energy-bfs/path", "path", "energy-bfs",
             description="sleeping-model BFS on paths (energy metric)"),
):
    register_scenario(_scenario)


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
#: Per-process cache of generated graph instances, keyed by
#: ``(family, max_weight, n, seed)`` — the full determinant of an instance.
#: Bounded FIFO so long ad-hoc sweeps cannot grow it without limit.
_GRAPH_CACHE: dict[tuple, object] = {}
_GRAPH_CACHE_CAP = 64


def clear_graph_cache() -> None:
    """Drop the per-process graph cache (test hook)."""
    _GRAPH_CACHE.clear()


def _instance_key(scenario: Scenario, n: int, seed: int) -> tuple:
    return (scenario.family, scenario.max_weight, n, seed)


def _cached_graph(scenario: Scenario, n: int, seed: int):
    key = _instance_key(scenario, n, seed)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = scenario.build_graph(n, seed)
        if len(_GRAPH_CACHE) >= _GRAPH_CACHE_CAP:
            _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
        _GRAPH_CACHE[key] = graph
    return graph


def run_scenario(name: str, n: int, seed: int = 0) -> dict:
    """Run one (scenario, size, seed) cell and return its tidy row.

    The graph instance comes from the per-process cache, so scenarios that
    share a family/size/seed cell reuse one graph (and its indexed view).
    Drivers must not mutate it — the library-wide append-only convention.
    """
    scenario = get_scenario(name)
    graph = _cached_graph(scenario, n, seed)
    metrics = Metrics()
    driver = _ALGORITHMS[scenario.algorithm]
    driver(graph, seed, metrics, **dict(scenario.params))
    summary = metrics.summary()
    return {
        "scenario": scenario.name,
        "family": scenario.family,
        "algorithm": scenario.algorithm,
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "seed": seed,
        "rounds": summary["rounds"],
        "messages": summary["messages"],
        "lost_messages": summary["lost_messages"],
        "congestion": summary["congestion"],
        "energy": summary["energy"],
    }


def _run_task_group(group: list[tuple[int, str, int, int]]) -> list[tuple[int, dict]]:
    """Run one locality group of ``(index, name, n, seed)`` tasks in order."""
    return [(index, run_scenario(name, n, seed)) for index, name, n, seed in group]


def run_sweep(
    scenarios: Iterable[str] | None = None,
    sizes: Sequence[int] = (16, 32, 48),
    seeds: Sequence[int] = (0,),
    workers: int | None = None,
) -> list[dict]:
    """Run every (scenario, size, seed) cell; return one tidy row per cell.

    ``workers=None`` or ``1`` runs in-process; ``workers > 1`` shards the
    independent cells across a fork-based process pool.  Row order and
    content are identical either way: rows follow the task cross product
    (scenario-major, then size, then seed) and contain only deterministic
    fields (:data:`ROW_FIELDS`).

    Dispatch is chunked by graph instance: cells sharing a
    ``(family, max_weight, n, seed)`` instance form one group, so a worker
    builds each graph once and serves every scenario over it from its
    per-process cache.  Results are re-ordered back to cross-product order,
    so grouping never changes the table.
    """
    names = list(scenarios) if scenarios is not None else list_scenarios()
    for name in names:
        get_scenario(name)  # fail fast on unknown names, before forking
    tasks = [(name, n, seed) for name in names for n in sizes for seed in seeds]
    # Group by graph-instance key (first-seen order) for cache locality.
    groups: dict[tuple, list[tuple[int, str, int, int]]] = {}
    for index, (name, n, seed) in enumerate(tasks):
        key = _instance_key(get_scenario(name), n, seed)
        groups.setdefault(key, []).append((index, name, n, seed))
    group_list = list(groups.values())
    rows: list[dict | None] = [None] * len(tasks)
    if workers is not None and workers > 1 and len(group_list) > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            with context.Pool(min(workers, len(group_list))) as pool:
                for chunk in pool.map(_run_task_group, group_list):
                    for index, row in chunk:
                        rows[index] = row
            return rows
    for group in group_list:
        for index, row in _run_task_group(group):
            rows[index] = row
    return rows


def smoke_sweep(workers: int | None = None) -> list[dict]:
    """The fixed tiny sweep behind ``python -m repro sweep --smoke`` (CI entry)."""
    return run_sweep(
        ["sssp/er", "bellman-ford/er", "bfs/grid", "energy-bfs/path"],
        sizes=(12, 20),
        seeds=(0,),
        workers=workers,
    )
