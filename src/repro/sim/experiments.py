"""Scenario registry and the per-cell experiment engine.

Every result in the paper is a *metered execution*: run a protocol over a
graph family at a sweep of sizes and read off the four complexity currencies
(rounds, messages, congestion, energy).  This module turns that pattern into
data:

* a **scenario** is a named triple *(graph family x algorithm x params)* —
  e.g. ``sssp/er`` is "the paper's SSSP on weighted random connected
  graphs".  Scenarios live in a registry (:func:`register_scenario`,
  :func:`get_scenario`, :func:`list_scenarios`) so new workloads are one
  registration, not a new benchmark harness;
* an **algorithm** is registered declaratively through
  :class:`repro.api.AlgorithmSpec` (name, entry point, model, oracle, param
  schema) — the built-ins live in :mod:`repro.api.drivers`, and third-party
  scenarios plug in via entry-point discovery
  (:func:`repro.api.algorithms.discover`) without editing this module;
* :func:`run_scenario` executes one *(scenario, size, seed)* cell — with a
  per-process graph-instance cache — and returns its tidy row.

Orchestration lives one layer up, in :mod:`repro.api`: build a
:class:`~repro.api.SweepSpec` and hand it to
:func:`~repro.api.run_sweep_spec`, which shards the cross product across
``multiprocessing`` workers, streams rows into a resumable
:class:`~repro.api.ResultSet`, and skips cells an earlier (possibly
interrupted) run already finished.  :func:`run_sweep` survives here as a
thin **deprecated** shim over that path and returns the identical rows.

Example::

    from repro.api import SweepSpec, run_sweep_spec
    rows = run_sweep_spec(SweepSpec(scenarios=("sssp/er", "bellman-ford/er"),
                                    sizes=(16, 32, 64), seeds=(0, 1),
                                    workers=4))

Notes on parallelism: workers are forked, so scenarios registered at import
time (including any registered by your own modules before the sweep starts)
are visible to them.  On platforms without ``fork`` the sweep silently runs
sequentially — same rows, just slower.

Graph caching: scenario cells that share a ``(family, max_weight, n, seed)``
instance — e.g. ``sssp/er`` and ``bellman-ford/er`` at the same size and
seed — reuse one graph object per worker instead of regenerating it, which
also carries the frozen :class:`~repro.graphs.IndexedGraph` view across
cells.  The sweep executor groups the task list by instance key so each
group lands on one worker (maximizing cache hits), then restores
cross-product row order before returning — the tidy table is bit-identical
at any worker count, cache hits or not.  Algorithms must treat graphs as
read-only (the library-wide append-only convention);
:func:`clear_graph_cache` drops the cache (mostly for tests).
"""

from __future__ import annotations

import hashlib
import json
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from ..api.algorithms import (
    AlgorithmSpec,
    check_params,
    discover,
    get_algorithm_spec,
    list_algorithm_specs,
    register_algorithm_spec,
)
from ..api.drivers import BUILTIN_ALGORITHMS, DriverError  # noqa: F401 (registers built-ins)
from ..graphs import generators
from .events import canonical_latency, simulation_engine
from .faults import canonical_fault, parse_fault_model
from .metrics import Metrics

__all__ = [
    "Scenario",
    "SweepError",
    "register_algorithm",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "list_algorithms",
    "run_scenario",
    "run_sweep",
    "scenario_digest",
    "smoke_sweep",
    "clear_graph_cache",
    "ROW_FIELDS",
]

#: Column order of a tidy sweep row (all deterministic — no wall-clock).
#: ``params_digest`` pins the scenario *definition* the cell ran under (see
#: :func:`scenario_digest`); drivers may append scenario-specific quality
#: columns after these (sorted by name — see :func:`run_scenario`).
ROW_FIELDS = (
    "scenario",
    "family",
    "algorithm",
    "n",
    "m",
    "seed",
    "size",
    "params_digest",
    "latency_model",
    "rounds",
    "messages",
    "lost_messages",
    "congestion",
    "energy",
)


class SweepError(RuntimeError):
    """Raised for unknown scenarios/algorithms or in-run verification failures."""


@dataclass(frozen=True)
class Scenario:
    """One registered workload: a graph family, an algorithm, and parameters.

    ``family`` keys into :data:`repro.graphs.generators.FAMILIES`;
    ``algorithm`` keys into the :class:`~repro.api.AlgorithmSpec` registry.
    ``max_weight > 1`` gives instances random integer weights in
    ``[1, max_weight]`` drawn from the per-run seed, so every ``(size,
    seed)`` cell is a distinct instance.  ``params`` is a tuple of ``(key,
    value)`` pairs forwarded to the driver (kept as a tuple so scenarios
    stay hashable and picklable).

    ``latency_model`` is the network model the cell runs under (see
    :func:`repro.sim.parse_latency_model` for the grammar).  The default
    ``"unit"`` is the paper's synchronous network and runs on the
    synchronous engine; anything else runs on the event engine with
    per-edge delays seeded by the cell's sweep seed, making latency a real
    sweep axis — same protocol, same instance, different network.

    ``fault_model`` is the fault plane of the cell (see
    :func:`repro.sim.parse_fault_model` for the grammar — ``drop:p``,
    ``dup:p``, ``crash:k@r[+restart:d]`` and ``+``-compositions).  The
    default ``"none"`` is the fault-free network; anything else injects
    seeded faults into *both* engines, and registration enforces that the
    algorithm declares tolerance for every injected fault kind
    (:attr:`repro.api.AlgorithmSpec.fault_tolerance`).

    ``max_time`` / ``message_budget`` are event-engine stopping conditions
    (virtual-time and bandwidth bounds); setting either pins the cell to
    the event engine and surfaces ``stop_reason``/``virtual_time`` row
    columns.
    """

    name: str
    family: str
    algorithm: str
    max_weight: int = 1
    params: tuple = ()
    description: str = ""
    latency_model: str = "unit"
    fault_model: str = "none"
    max_time: int | None = None
    message_budget: int | None = None

    def build_graph(self, n: int, seed: int):
        return generators.make_family(self.family, n, self.max_weight, seed=seed)


_SCENARIOS: dict[str, Scenario] = {}


def register_algorithm(name: str, driver: Callable) -> None:
    """Register a bare ``driver(graph, seed, metrics, **params)`` callable.

    Back-compat convenience: wraps the callable in an in-process
    :class:`~repro.api.AlgorithmSpec`.  Prefer registering a full spec via
    :func:`repro.api.register_algorithm_spec` — a spec'd algorithm is
    serializable and survives re-import in forked workers either way, but
    only the spec path documents model/oracle/params.
    """
    register_algorithm_spec(AlgorithmSpec(name, entry_point="", driver=driver))


def register_scenario(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the registry (replacing any same-named entry).

    Rejects unknown families and algorithms, and validates the scenario's
    ``params`` against the algorithm's declared ``param_schema`` — a
    drifted parameter name or type fails here, at registration, not inside
    a forked sweep worker.
    """
    if scenario.family not in generators.FAMILIES:
        raise SweepError(
            f"scenario {scenario.name!r}: unknown family {scenario.family!r} "
            f"(options: {sorted(generators.FAMILIES)})"
        )
    try:
        spec = get_algorithm_spec(scenario.algorithm)
    except KeyError:
        raise SweepError(
            f"scenario {scenario.name!r}: unknown algorithm {scenario.algorithm!r} "
            f"(options: {[spec.name for spec in list_algorithm_specs()]})"
        ) from None
    try:
        check_params(spec, dict(scenario.params))
    except ValueError as exc:
        raise SweepError(f"scenario {scenario.name!r}: {exc}") from None
    try:
        canonical_latency(scenario.latency_model)
    except ValueError as exc:
        raise SweepError(f"scenario {scenario.name!r}: {exc}") from None
    try:
        canon_fault = canonical_fault(scenario.fault_model)
    except ValueError as exc:
        raise SweepError(f"scenario {scenario.name!r}: {exc}") from None
    if canon_fault != "none":
        kinds = parse_fault_model(canon_fault).kinds
        missing = sorted(kinds - frozenset(spec.fault_tolerance))
        if missing:
            raise SweepError(
                f"scenario {scenario.name!r}: algorithm {scenario.algorithm!r} "
                f"declares no tolerance for fault kind(s) {missing} "
                f"(declared: {sorted(spec.fault_tolerance) or 'none'})"
            )
    for bound_name in ("max_time", "message_budget"):
        bound = getattr(scenario, bound_name)
        if bound is not None and (isinstance(bound, bool) or not isinstance(bound, int) or bound < 1):
            raise SweepError(
                f"scenario {scenario.name!r}: {bound_name} must be a positive "
                f"int or None, got {bound!r}"
            )
    _SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_digest(
    scenario: Scenario,
    latency_model: str | None = None,
    fault_model: str | None = None,
) -> str:
    """Short canonical digest of everything that determines a cell's result.

    Hashes the scenario *definition* — family, algorithm, ``max_weight``,
    the full ``params`` mapping, and (when not ``"unit"``/``"none"``) the
    latency and fault models, plus any stopping bounds — as canonical
    JSON.  The digest rides in every tidy row (``params_digest``) and in
    the resume key (:func:`repro.api.cell_key`), so a store written under
    one definition of a scenario name can never silently satisfy a resume
    under another: changed params produce a different key and the stale
    cells re-run.

    ``latency_model`` / ``fault_model`` override the scenario's own models
    (the sweep-level axes).  The canonical ``"unit"`` latency and
    ``"none"`` fault plane are *omitted* from the payload — fault-free
    unit-latency digests are identical to pre-latency/pre-fault ones, so
    existing stores keep resuming — and the executing engine is never
    hashed: under unit latency both engines produce the same rows by
    construction, so engine choice is provenance, not identity.
    """
    effective = canonical_latency(
        latency_model if latency_model is not None else scenario.latency_model
    )
    effective_fault = canonical_fault(
        fault_model if fault_model is not None else scenario.fault_model
    )
    payload_dict = {
        "family": scenario.family,
        "algorithm": scenario.algorithm,
        "max_weight": scenario.max_weight,
        # dict() accepts both the canonical pair-tuple and a plain
        # mapping, like every other consumer of scenario.params.
        "params": {str(k): v for k, v in dict(scenario.params).items()},
    }
    if effective != "unit":
        payload_dict["latency_model"] = effective
    if effective_fault != "none":
        payload_dict["fault_model"] = effective_fault
    if scenario.max_time is not None:
        payload_dict["max_time"] = scenario.max_time
    if scenario.message_budget is not None:
        payload_dict["message_budget"] = scenario.message_budget
    payload = json.dumps(payload_dict, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def ensure_discovered() -> None:
    """Load third-party scenario plugins (idempotent; see :func:`repro.api.discover`)."""
    discover()


def get_scenario(name: str) -> Scenario:
    if name not in _SCENARIOS:
        ensure_discovered()  # a plugin may register it on first load
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise SweepError(
            f"unknown scenario {name!r}; registered: {sorted(_SCENARIOS)}"
        ) from None


def list_scenarios() -> list[str]:
    return sorted(_SCENARIOS)


def list_algorithms() -> list[str]:
    return [spec.name for spec in list_algorithm_specs()]


# ----------------------------------------------------------------------
# built-in scenarios: the paper's headline comparisons as registry entries
# ----------------------------------------------------------------------
for _scenario in (
    Scenario("sssp/er", "er", "sssp", max_weight=9,
             description="paper SSSP on weighted random connected graphs"),
    Scenario("sssp/grid", "grid", "sssp", max_weight=9,
             description="paper SSSP on weighted grids (D ~ sqrt(n))"),
    Scenario("sssp/path", "path", "sssp", max_weight=9,
             description="paper SSSP on weighted paths (D ~ n)"),
    Scenario("cssp/er", "er", "cssp", max_weight=9,
             description="thresholded CSSP on weighted random graphs"),
    Scenario("bellman-ford/er", "er", "bellman-ford", max_weight=9,
             description="Bellman-Ford baseline on weighted random graphs"),
    Scenario("dijkstra/er", "er", "dijkstra", max_weight=9,
             description="distributed Dijkstra baseline on weighted random graphs"),
    Scenario("bfs/grid", "grid", "bfs",
             description="unweighted CONGEST BFS on grids"),
    Scenario("boruvka/er", "er", "boruvka",
             description="Boruvka spanning forest on unit-weight random graphs"),
    Scenario("apsp/er", "er", "apsp", max_weight=9,
             description="random-delay concurrent APSP on weighted random graphs"),
    Scenario("labeled-bfs/grid", "grid", "labeled-bfs", max_weight=9,
             description="nearest-labeled-source BFS on weighted grids"),
    Scenario("decomposition/er", "er", "decomposition",
             description="k-separated decomposition on unit-weight random graphs"),
    Scenario("sparse-cover/grid", "grid", "sparse-cover",
             description="sparse d-cover on unit-weight grids"),
    Scenario("layered-cover/tree", "tree", "layered-cover",
             description="layered sparse cover stack on random trees"),
    Scenario("tree-aggregation/tree", "tree", "tree-aggregation",
             description="periodic sleeping-model tree aggregation on random trees"),
    Scenario("energy-bfs/path", "path", "energy-bfs",
             description="sleeping-model BFS on paths (energy metric)"),
    Scenario("energy-bfs-scratch/tree", "tree", "energy-bfs-scratch",
             description="from-scratch low-energy BFS bootstrap on random trees"),
    Scenario("energy-cssp/er", "er", "energy-cssp", max_weight=4,
             description="energy-model weighted CSSP on weighted random graphs"),
    # Latency-heterogeneous axis: the same Bellman-Ford workload under
    # asynchronous networks (event engine).  Bellman-Ford is delay-tolerant
    # — relaxation is monotone, so it converges to correct distances under
    # any per-edge delays once its horizon scales by the latency bound
    # (see repro.baselines.bellman_ford) — which makes it the honest
    # catalog entry for the latency axis; round-timing-dependent protocols
    # (BFS layers, SSSP phases) are *not* registered heterogeneous.
    Scenario("bellman-ford/er@delay4", "er", "bellman-ford", max_weight=9,
             latency_model="random:4",
             description="Bellman-Ford under seeded random per-edge delays in 1..4"),
    Scenario("bellman-ford/grid@stretch3", "grid", "bellman-ford", max_weight=9,
             latency_model="uniform:3",
             description="Bellman-Ford under uniformly tripled edge latency"),
    # Fault-injection axis: seeded drop/dup/crash-restart planes on the
    # protocols whose specs declare tolerance for them (see
    # repro.api.drivers).  Bellman-Ford re-broadcasts every round, so
    # drops retry and restarted nodes relearn (fully tolerant); BFS offers
    # are one-shot, so it is registered only under dup/crash planes —
    # injecting drops into it is the negative control the fault tests
    # exercise via run_scenario's ungated fault_model override.
    Scenario("bellman-ford/er@drop5", "er", "bellman-ford", max_weight=9,
             fault_model="drop:0.05",
             description="Bellman-Ford with 5% seeded message drops"),
    Scenario("bellman-ford/grid@lossy", "grid", "bellman-ford", max_weight=9,
             fault_model="drop:0.1+dup:0.05",
             description="Bellman-Ford under combined drop and duplication"),
    Scenario("bellman-ford/er@crashrestart", "er", "bellman-ford", max_weight=9,
             fault_model="crash:2@2+restart:3",
             description="Bellman-Ford with two crash-restart nodes"),
    Scenario("bfs/grid@crash2", "grid", "bfs",
             fault_model="crash:2@3+restart:6",
             description="CONGEST BFS with two crash-restart nodes on grids"),
    # Duration-bounded axis: the same lossy Bellman-Ford workload under a
    # virtual-time budget (event engine), surfacing stop_reason and the
    # final virtual time as row columns.
    Scenario("bellman-ford/er@budget", "er", "bellman-ford", max_weight=9,
             fault_model="drop:0.05", max_time=24,
             description="lossy Bellman-Ford cut short by a virtual-time budget"),
):
    register_scenario(_scenario)


# ----------------------------------------------------------------------
# per-cell execution (the worker-side engine)
# ----------------------------------------------------------------------
#: Per-process cache of generated graph instances, keyed by
#: ``(family, max_weight, n, seed)`` — the full determinant of an instance.
#: Bounded FIFO so long ad-hoc sweeps cannot grow it without limit.
_GRAPH_CACHE: dict[tuple, object] = {}
_GRAPH_CACHE_CAP = 64

#: Shared-memory attach map ``instance_key -> segment name``, set by the
#: sweep supervisor *before* forking so workers inherit it.  A worker's
#: :func:`_cached_graph` attaches the published CSR instead of
#: regenerating the instance; any attach failure falls back to the local
#: build (the shm plane is an optimization, never a dependency).
_SHM_ATTACH: dict[tuple, str] = {}


def clear_graph_cache() -> None:
    """Drop the per-process graph cache (test hook)."""
    _GRAPH_CACHE.clear()


def _instance_key(scenario: Scenario, n: int, seed: int) -> tuple:
    return (scenario.family, scenario.max_weight, n, seed)


def _cached_graph(scenario: Scenario, n: int, seed: int):
    key = _instance_key(scenario, n, seed)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        segment = _SHM_ATTACH.get(key)
        if segment is not None:
            from . import shm

            graph = shm.attach_graph(segment)
        if graph is None:
            graph = scenario.build_graph(n, seed)
        if len(_GRAPH_CACHE) >= _GRAPH_CACHE_CAP:
            _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
        _GRAPH_CACHE[key] = graph
    return graph


def _run_cell(
    name: str,
    n: int,
    seed: int,
    engine: str | None = None,
    latency_model: str | None = None,
    fault_model: str | None = None,
) -> tuple[dict, Metrics]:
    """Execute one cell; return its tidy row and the full metrics object.

    ``latency_model`` / ``fault_model`` override the scenario's own
    network and fault models (the sweep-level axes) and ``engine`` pins
    the executor backend; by default unit-latency cells run on the
    synchronous round engine and everything else — including
    duration-bounded scenarios — on the event engine.  Seeded latency
    models and every fault draw key off the cell's sweep seed.  The
    engine never appears in the row — under unit latency both engines
    are differentially identical (faulted or not), so it is provenance,
    not part of the result's identity.

    A driver may return a dict of scenario-specific quality columns (MST
    weight, cover degree/radius, ``robustness`` verdicts, ``preprocess_*``
    costs, ...); they are appended to the row after the core
    :data:`ROW_FIELDS`, in sorted key order so fresh and store-reloaded
    rows agree byte-for-byte.  Faulted cells additionally append the
    ``fault_model`` axis value and the four fault counters; cells whose
    run was cut short by a stopping bound append
    ``stop_reason``/``virtual_time``.  Fault-free unbounded rows carry
    none of these, keeping them byte-identical to pre-fault stores.
    """
    scenario = get_scenario(name)
    effective_latency = (
        latency_model if latency_model is not None else scenario.latency_model
    )
    effective_fault = (
        fault_model if fault_model is not None else scenario.fault_model
    )
    bounded = scenario.max_time is not None or scenario.message_budget is not None
    try:
        canonical = canonical_latency(effective_latency)
        canonical_fault_model = canonical_fault(effective_fault)
        effective_engine = engine or (
            "round" if canonical == "unit" and not bounded else "event"
        )
        if effective_engine == "round" and canonical != "unit":
            raise ValueError(
                f"the synchronous 'round' engine cannot express latency model "
                f"{canonical!r}; use engine='event'"
            )
        if effective_engine == "round" and bounded:
            raise ValueError(
                "max_time/message_budget are event-engine stopping conditions; "
                "use engine='event'"
            )
    except ValueError as exc:
        # An unparseable latency/fault string or an engine mismatch is a
        # configuration error, reported like any other bad sweep input.
        raise SweepError(f"cell {name!r}: {exc}") from exc
    graph = _cached_graph(scenario, n, seed)
    metrics = Metrics()
    driver = get_algorithm_spec(scenario.algorithm).resolve()
    try:
        with simulation_engine(
            effective_engine,
            effective_latency,
            seed=seed,
            faults=canonical_fault_model,
            max_time=scenario.max_time,
            message_budget=scenario.message_budget,
        ) as config:
            extras = driver(graph, seed, metrics, **dict(scenario.params))
    except DriverError as exc:
        raise SweepError(str(exc)) from exc
    summary = metrics.summary()
    row = {
        "scenario": scenario.name,
        "family": scenario.family,
        "algorithm": scenario.algorithm,
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "seed": seed,
        # The *requested* size.  Families may round it (a grid at size 12
        # builds a 3x3 = 9-node instance), but resume and sharding address
        # cells by what was asked for — keying on graph.num_nodes made
        # every resume lookup miss on such families and silently re-run
        # their cells (see repro.api.cell_key).
        "size": n,
        "params_digest": scenario_digest(
            scenario, latency_model=effective_latency, fault_model=effective_fault
        ),
        "latency_model": canonical,
        "rounds": summary["rounds"],
        "messages": summary["messages"],
        "lost_messages": summary["lost_messages"],
        "congestion": summary["congestion"],
        "energy": summary["energy"],
    }
    if extras is not None and not isinstance(extras, dict):
        raise SweepError(
            f"driver for {scenario.algorithm!r} returned {type(extras).__name__}; "
            "drivers return None or a dict of quality columns"
        )
    merged = dict(extras) if extras else {}
    if canonical_fault_model != "none":
        merged.setdefault("fault_model", canonical_fault_model)
        merged.setdefault("messages_dropped", metrics.messages_dropped)
        merged.setdefault("messages_duplicated", metrics.messages_duplicated)
        merged.setdefault("nodes_crashed", metrics.nodes_crashed)
        merged.setdefault("recoveries", metrics.recoveries)
    if bounded or config.stats.stop_reason is not None:
        merged.setdefault("stop_reason", config.stats.stop_reason or "completed")
        merged.setdefault("virtual_time", config.stats.virtual_time)
    for key in sorted(merged):
        if key in row or key == "metrics":
            raise SweepError(
                f"driver for {scenario.algorithm!r}: quality column {key!r} "
                "collides with a core row field"
            )
        row[key] = merged[key]
    return row, metrics


def run_scenario(
    name: str,
    n: int,
    seed: int = 0,
    engine: str | None = None,
    latency_model: str | None = None,
    fault_model: str | None = None,
) -> dict:
    """Run one (scenario, size, seed) cell and return its tidy row.

    ``engine``/``latency_model``/``fault_model`` override the scenario's
    defaults (see :func:`_run_cell`).  Unlike the sweep layer, this entry
    point does *not* gate ``fault_model`` on the algorithm's declared
    tolerance — it is the hands-on API for probing exactly how an
    undeclared protocol breaks (the sweep's gate lives in
    :func:`repro.api.run_sweep_spec`).  The graph instance comes from the
    per-process cache, so scenarios that share a family/size/seed cell
    reuse one graph (and its indexed view).  Drivers must not mutate it —
    the library-wide append-only convention.
    """
    row, _ = _run_cell(
        name, n, seed, engine=engine, latency_model=latency_model,
        fault_model=fault_model,
    )
    return row


def _run_cell_group(
    group: list[tuple[int, str, int, int]],
    with_metrics: bool = True,
    engine: str | None = None,
    latency_model: str | None = None,
    fault_model: str | None = None,
) -> list[tuple[int, dict, dict | None]]:
    """Run one locality group of ``(index, name, n, seed)`` tasks in order.

    Returns ``(index, tidy_row, metrics_dict)`` triples — the serialized
    metrics ride along so the sweep executor can persist them to the
    :class:`~repro.api.ResultSet` without re-running the cell.
    ``with_metrics=False`` (in-memory stores, which discard them) skips the
    O(E log E) serialization and keeps the worker pipes lean.
    ``engine``/``latency_model``/``fault_model`` are the sweep-level
    overrides, applied uniformly to every cell of the group.
    """
    out = []
    for index, name, n, seed in group:
        row, metrics = _run_cell(
            name, n, seed, engine=engine, latency_model=latency_model,
            fault_model=fault_model,
        )
        out.append((index, row, metrics.to_dict() if with_metrics else None))
    return out


def _worker_loop(
    task_pipe,
    result_pipe,
    with_metrics: bool = True,
    engine: str | None = None,
    latency_model: str | None = None,
    fault_model: str | None = None,
    backend: str | None = None,
) -> None:
    """Supervised-executor worker: serve dispatched cell groups until told to stop.

    The group-level task protocol of :func:`repro.api.run_sweep_spec`'s
    supervisor: the parent sends whole locality groups down this worker's
    private task pipe (``None`` or EOF means shut down) and the worker
    answers each on its private result pipe with ``("ok", triples)`` or
    ``("error", message)``.  Both are one-writer/one-reader
    ``multiprocessing.Pipe(duplex=False)`` connections.  Driver exceptions
    are stringified before crossing the pipe, so an unpicklable exception
    object can never turn a deterministic failure into a hung parent.  A
    worker that dies mid-group (crash, OOM kill, ``os._exit``) simply
    never answers — the supervisor notices via the process sentinel and
    re-dispatches the group.  Signals
    (``KeyboardInterrupt``/``SystemExit``) propagate and kill the worker
    for the same reason: an interrupt is a death, not a driver bug, and
    reporting it as ``"error"`` would abort the whole sweep instead of
    letting the supervisor's fault path decide.
    """
    # The backend request is process-wide worker state, set once before
    # any cell runs (the knob is provenance-only: rows are byte-identical
    # either way, so a retried group re-run under a fresh worker with the
    # same request cannot diverge from the first attempt).
    from .kernels import set_backend

    set_backend(backend)
    # A forked worker inherits the supervisor's graph cache — including
    # the instances the supervisor built only to publish their shared-
    # memory segments.  Drop them so this worker attaches the shared CSR
    # pages (zero-copy) instead of pinning copy-on-write duplicates.
    if _SHM_ATTACH:
        _GRAPH_CACHE.clear()
    while True:
        try:
            group = task_pipe.recv()
        except EOFError:
            return  # the supervisor is gone; nothing left to serve
        if group is None:
            return
        try:
            result = _run_cell_group(
                group,
                with_metrics=with_metrics,
                engine=engine,
                latency_model=latency_model,
                fault_model=fault_model,
            )
        except (KeyboardInterrupt, SystemExit):
            raise  # die silently; the supervisor sees a dead worker
        except BaseException as exc:  # noqa: BLE001 — must cross the pipe as data
            result_pipe.send(("error", f"{type(exc).__name__}: {exc}"))
        else:
            result_pipe.send(("ok", result))


# ----------------------------------------------------------------------
# legacy orchestration shims (the spec path is repro.api.run_sweep_spec)
# ----------------------------------------------------------------------
def run_sweep(
    scenarios: Iterable[str] | None = None,
    sizes: Sequence[int] = (16, 32, 48),
    seeds: Sequence[int] = (0,),
    workers: int | None = None,
) -> list[dict]:
    """Deprecated shim: run every (scenario, size, seed) cell in-memory.

    .. deprecated::
        Build a :class:`repro.api.SweepSpec` and call
        :func:`repro.api.run_sweep_spec` instead — same rows, plus JSON
        specs, persistent stores, and resume.  This shim constructs the
        equivalent spec and returns the identical tidy table.
    """
    warnings.warn(
        "repro.sim.experiments.run_sweep is deprecated; build a "
        "repro.api.SweepSpec and call repro.api.run_sweep_spec instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import SweepSpec, run_sweep_spec

    # Preserve the historical contract exactly: an empty cross product
    # (empty scenario list, sizes, or seeds) is an empty table, where the
    # stricter SweepSpec validation would reject it.
    names = tuple(scenarios) if scenarios is not None else None
    sizes = tuple(sizes)
    seeds = tuple(seeds)
    if (names is not None and not names) or not sizes or not seeds:
        return []
    spec = SweepSpec(
        scenarios=names,
        sizes=sizes,
        seeds=seeds,
        workers=workers if workers is not None else 1,
    )
    return run_sweep_spec(spec)


def smoke_sweep(workers: int | None = None) -> list[dict]:
    """The fixed tiny sweep behind ``python -m repro sweep --smoke`` (CI entry)."""
    from ..api import run_sweep_spec, smoke_spec

    return run_sweep_spec(smoke_spec(workers=workers))
