"""Seeded fault-injection plane: message drop/duplication, node crash-restart.

The sleeping model exists because messages to sleeping nodes are *lost* —
that is the one hazard the engines could express so far.  This module
generalizes it into a first-class fault plane, following the same recipe
:class:`~repro.sim.events.RandomDelayLatency` established for latency:
every fault decision is a pure function of ``(seed, fault kind, edge or
node, time, occurrence index)``, so a faulted execution is deterministic,
fork-stable and process-stable — the same ``(seed, fault_model)`` pair
drops the same messages and crashes the same nodes no matter how many
sweep workers or shards ran the cell.

Fault model strings (the sweep-facing ``fault_model`` axis):

* ``"none"`` — no faults; parses to ``None`` so engine hot paths stay
  byte-identical to the pre-fault code (the differential guarantee);
* ``"drop:p"`` — each delivered-bound message is destroyed independently
  with probability ``p`` (metered in ``Metrics.messages_dropped``);
* ``"dup:p"`` — each *delivered* message independently arrives twice
  (the duplicate lands immediately after the original, same time; it is
  a fault artifact, so it bypasses edge-capacity metering and does not
  inflate message/congestion totals — only ``messages_duplicated``);
* ``"crash:k@r"`` — ``k`` seeded node crashes at/after time ``r`` (the
  ``j``-th sampled node dies at ``r + j``): a crashed node stops
  stepping, its pending inbox is destroyed, and messages addressed to it
  are dropped;
* ``"+restart:d"`` (only with ``crash``) — each crashed node reboots
  ``d`` time units after its crash with *fresh* algorithm state (a copy
  of its initial instance), as if it had just joined the network;
* composed forms join terms with ``+``: ``"drop:0.05+dup:0.01"``,
  ``"crash:2@3+restart:6"``.

Where faults act (see DESIGN.md): drop and duplication are decided at
**send time**, on the sending side of the link — consistent with the
event engine's send-time resolution of sleeping-model delivery — while a
crash acts at **delivery time**, because a dead receiver cannot accept a
message regardless of when it was sent.  Under unit latency the two
engines make identical draws in identical order, so faulted runs, like
fault-free ones, agree byte-for-byte across engines.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["FaultModel", "parse_fault_model", "canonical_fault"]


def _uniform(key: str) -> float:
    """A uniform [0, 1) draw keyed by a string — stable across processes.

    ``random.Random(key)`` would work (string seeding hashes with
    sha512), but building a full Mersenne state per message is
    needless; one blake2b digest is the cheap, equally stable draw.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


def _check_prob(value: float, what: str) -> float:
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{what} probability must be in [0, 1), got {value!r}")
    return value


class FaultModel:
    """One parsed fault plane: which hazards are active, at what rates.

    Instances are immutable in spirit (construct-and-use); the engines
    query them through :meth:`drop_message`, :meth:`duplicate_message`
    and :meth:`crash_plan`, all pure functions of the constructor
    arguments — no mutable draw state, which is what makes faulted runs
    reproducible across worker counts and shards.
    """

    #: Batch-kernel gate (see :func:`repro.sim.kernels.kernel_for`).  Fault
    #: draws are keyed per *delivered* message in delivery order, and crash
    #: restarts rebind algorithm instances mid-run — both interleave with
    #: per-node stepping in ways the batch path does not reproduce, so the
    #: engines keep the scalar path for any active fault plane.  A future
    #: plane whose draws are provably step-order-independent may override
    #: this to opt back in.
    batch_safe = False

    def __init__(
        self,
        *,
        drop: float = 0.0,
        dup: float = 0.0,
        crashes: int = 0,
        crash_time: int = 0,
        restart_after: int | None = None,
        seed: int = 0,
    ) -> None:
        self.drop = _check_prob(drop, "drop")
        self.dup = _check_prob(dup, "dup")
        if not isinstance(crashes, int) or isinstance(crashes, bool) or crashes < 0:
            raise ValueError(f"crash count must be an integer >= 0, got {crashes!r}")
        if not isinstance(crash_time, int) or isinstance(crash_time, bool) or crash_time < 0:
            raise ValueError(f"crash time must be an integer >= 0, got {crash_time!r}")
        if restart_after is not None and (
            not isinstance(restart_after, int)
            or isinstance(restart_after, bool)
            or restart_after < 1
        ):
            raise ValueError(
                f"restart delay must be an integer >= 1, got {restart_after!r}"
            )
        if restart_after is not None and crashes == 0:
            raise ValueError("restart requires crash: 'restart:d' without 'crash:k@r'")
        self.crashes = crashes
        self.crash_time = crash_time
        self.restart_after = restart_after
        self.seed = seed

    # -- identity --------------------------------------------------------
    @property
    def name(self) -> str:
        """Canonical axis string (term order: drop, dup, crash, restart)."""
        terms: list[str] = []
        if self.drop:
            terms.append(f"drop:{self.drop:g}")
        if self.dup:
            terms.append(f"dup:{self.dup:g}")
        if self.crashes:
            terms.append(f"crash:{self.crashes}@{self.crash_time}")
            if self.restart_after is not None:
                terms.append(f"restart:{self.restart_after}")
        return "+".join(terms) if terms else "none"

    @property
    def kinds(self) -> frozenset:
        """The active hazard kinds — matched against declared tolerances."""
        kinds = set()
        if self.drop:
            kinds.add("drop")
        if self.dup:
            kinds.add("dup")
        if self.crashes:
            kinds.add("crash")
        return frozenset(kinds)

    @property
    def horizon_factor(self) -> int:
        """Time-budget slack for fault-aware protocols (cf. latency_bound).

        Dropped messages retry on the next (re)broadcast and restarted
        nodes relearn from scratch, so convergence under faults needs
        head-room; doubling the fault-free horizon covers every
        registered rate with large margin (a drop rate ``p`` slows a
        monotone flood by ``1/(1-p)`` in expectation).
        """
        return 2

    def __repr__(self) -> str:
        return f"FaultModel({self.name!r}, seed={self.seed})"

    # -- per-message draws ----------------------------------------------
    def drop_message(self, src: object, dst: object, time: int, index: int) -> bool:
        """Whether the ``index``-th message on ``src -> dst`` at ``time`` drops.

        Keyed by the drop rate (not the whole model name), so composing
        ``dup`` onto an existing ``drop:p`` model does not perturb which
        messages drop — the axes compose without interference.
        """
        if not self.drop:
            return False
        key = f"{self.seed}|drop|{self.drop:g}|{src!r}|{dst!r}|{time}|{index}"
        return _uniform(key) < self.drop

    def duplicate_message(self, src: object, dst: object, time: int, index: int) -> bool:
        """Whether that message is delivered twice (independent of dropping)."""
        if not self.dup:
            return False
        key = f"{self.seed}|dup|{self.dup:g}|{src!r}|{dst!r}|{time}|{index}"
        return _uniform(key) < self.dup

    # -- crash schedule --------------------------------------------------
    def crash_plan(self, labels) -> dict:
        """``{node: (crash_time, restart_time | None)}`` for this network.

        Victims are sampled from the repr-sorted label list by a
        :class:`random.Random` seeded with ``"{seed}|crash|{k}|{r}"`` —
        independent of graph construction order and identical in every
        process.  The ``j``-th victim crashes at ``crash_time + j``
        (staggered, so composed failures arrive as a sequence, not one
        synchronized wipe) and restarts ``restart_after`` later if a
        restart delay is configured.
        """
        if not self.crashes:
            return {}
        pool = sorted(labels, key=repr)
        rng = random.Random(f"{self.seed}|crash|{self.crashes}|{self.crash_time}")
        chosen = rng.sample(pool, min(self.crashes, len(pool)))
        plan: dict = {}
        for j, node in enumerate(chosen):
            when = self.crash_time + j
            restart = None if self.restart_after is None else when + self.restart_after
            plan[node] = (when, restart)
        return plan


def _term_error(
    spec: str, position: int, count: int, term: str, detail: str
) -> ValueError:
    """A parse error that pinpoints the failing term of a composed spec.

    ``"drop:0.1+crash:2@x"`` fails somewhere in its second term; the
    message must say *which* term and *what* text broke, or the user is
    left diffing the whole spec by eye.
    """
    where = (
        f"term {position} of {count} ({term!r})" if count > 1 else f"term {term!r}"
    )
    return ValueError(f"fault model {spec!r}: {where}: {detail}")


def _parse_number(
    text: str,
    *,
    integer: bool,
    spec: str,
    position: int,
    count: int,
    term: str,
    what: str,
):
    try:
        return int(text) if integer else float(text)
    except ValueError:
        kind = "an integer" if integer else "a number"
        raise _term_error(
            spec, position, count, term,
            f"expected {kind} for {what}, got {text!r}",
        ) from None


def parse_fault_model(spec: "str | FaultModel | None", seed: int = 0) -> FaultModel | None:
    """Build a fault plane from its sweep-axis string.

    ``"none"`` (and models whose every rate is zero) parse to ``None`` —
    the engines gate all fault bookkeeping on ``plane is None``, which is
    what keeps fault-free runs byte-identical to the pre-fault code.  A
    :class:`FaultModel` instance passes through unchanged (it carries its
    own seed, like a prebuilt latency model).  Raises :class:`ValueError`
    on anything malformed — callers surface it as a spec or sweep error
    before any work runs.
    """
    if spec is None:
        return None
    if isinstance(spec, FaultModel):
        return spec
    if not isinstance(spec, str):
        raise ValueError(f"fault model must be a string or FaultModel, got {spec!r}")
    text = spec.strip().lower()
    if text == "none":
        return None
    if not text:
        raise ValueError("fault model must be 'none' or a '+'-joined list of terms")
    drop = dup = 0.0
    crashes = 0
    crash_time = 0
    restart_after: int | None = None
    terms = [term.strip() for term in text.split("+")]
    total = len(terms)
    seen: dict[str, int] = {}
    for position, term in enumerate(terms, start=1):
        head, sep, tail = term.partition(":")
        if term == "none" or not sep:
            raise _term_error(
                spec, position, total, term,
                "expected 'drop:p', 'dup:p', 'crash:k@r' or 'restart:d' "
                "('none' stands alone)",
            )
        if head in seen:
            raise _term_error(
                spec, position, total, term,
                f"repeats {head!r} (already given at term {seen[head]})",
            )
        seen[head] = position
        number = dict(spec=spec, position=position, count=total, term=term)
        try:
            if head == "drop":
                drop = _check_prob(
                    _parse_number(tail, integer=False, what="the drop probability",
                                  **number),
                    "drop",
                )
            elif head == "dup":
                dup = _check_prob(
                    _parse_number(tail, integer=False, what="the dup probability",
                                  **number),
                    "dup",
                )
            elif head == "crash":
                crash_count, at_sep, when = tail.partition("@")
                if not at_sep:
                    raise _term_error(
                        spec, position, total, term,
                        "expected 'crash:k@r' (k crashes at/after time r)",
                    )
                crashes = _parse_number(
                    crash_count, integer=True,
                    what="the crash count (before '@')", **number,
                )
                crash_time = _parse_number(
                    when, integer=True,
                    what="the crash time (after '@')", **number,
                )
                if crashes < 1:
                    raise _term_error(
                        spec, position, total, term,
                        f"crash count must be >= 1, got {crashes}",
                    )
                if crash_time < 0:
                    raise _term_error(
                        spec, position, total, term,
                        f"crash time must be >= 0, got {crash_time}",
                    )
            elif head == "restart":
                restart_after = _parse_number(
                    tail, integer=True, what="the restart delay", **number,
                )
                if restart_after < 1:
                    raise _term_error(
                        spec, position, total, term,
                        f"restart delay must be >= 1, got {restart_after}",
                    )
            else:
                raise _term_error(
                    spec, position, total, term,
                    "unknown term (options: 'drop:p', 'dup:p', 'crash:k@r', "
                    "'restart:d')",
                )
        except ValueError as exc:
            if str(exc).startswith("fault model "):
                raise
            # _check_prob raises without term context; attach it here.
            raise _term_error(spec, position, total, term, str(exc)) from None
    if restart_after is not None and not crashes:
        raise ValueError(f"fault model {spec!r}: restart requires a crash term")
    if not (drop or dup or crashes):
        return None
    return FaultModel(
        drop=drop,
        dup=dup,
        crashes=crashes,
        crash_time=crash_time,
        restart_after=restart_after,
        seed=seed,
    )


def canonical_fault(spec: "str | FaultModel | None") -> str:
    """The canonical string of a fault model spec (``"none"`` when inert).

    This is the value recorded in tidy rows and hashed into scenario
    digests — and it is hashed **only when not "none"**, so every
    pre-fault JSONL store keeps resuming unchanged.  Zero-rate terms
    canonicalize away: ``"drop:0"`` is ``"none"``.
    """
    plane = parse_fault_model(spec, seed=0)
    return "none" if plane is None else plane.name
