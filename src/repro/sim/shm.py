"""Zero-copy shared-memory graph plane for sweep workers.

A sweep's locality groups all share graph instances keyed by
``(family, max_weight, n, seed)``.  Without this module every worker
regenerates its group's graph from the family recipe; with it, the
supervisor builds each graph once, publishes its CSR columns into one
``multiprocessing.shared_memory`` segment, and forked workers *attach* —
the OS maps the same physical pages into the worker, no pickling and no
regeneration.  The attach rebuilds the label-space :class:`Graph` (drivers
iterate neighbors by label) and seeds its cached
:class:`~repro.graphs.indexed.IndexedGraph` via
:meth:`~repro.graphs.indexed.IndexedGraph.from_csr`, passing numpy views
over the mapped buffer as ``csr_views`` so the flat-array export batch
kernels consume stays zero-copy end to end.  Everything is byte-order
exact: the attached CSR *is* the publisher's CSR, so row/metric identity
across worker counts is structural, not probabilistic.

Ownership and cleanup — the part that must survive every failure mode:

* The **supervisor is the sole owner** of every segment.  It publishes
  inside a ``try``/``finally`` and unlinks on every exit path — success,
  driver errors, and Ctrl-C alike.  If the supervisor itself is SIGKILLed,
  its ``resource_tracker`` daemon (which outlives it precisely for this)
  unlinks the registered segments.
* Workers never unlink.  :class:`SharedMemory` registers every open with
  the resource tracker (attaches too, not just creates — CPython
  gh-82300), but the plane only runs under the ``fork`` start method, so
  workers share the supervisor's tracker daemon and an attach-side
  register is an idempotent set-add there.  A crashed or SIGKILLed
  worker therefore cannot trigger an unlink; the daemon cleans up only
  when the whole process tree is gone.
* Attach failures (segment already gone, platform without shm) fall back
  to regenerating the graph locally; the plane is an optimization, never
  a correctness dependency.

Graceful degradation: on platforms without ``multiprocessing.shared_memory``
(or without ``/dev/shm``), :func:`available` is False and the sweep runs
exactly as before.  numpy is optional — without it the attach still works
(the engine's plain-list CSR is materialized from the mapped buffer) and
only the zero-copy ``csr()`` seeding is skipped.
"""

from __future__ import annotations

import pickle
import struct

__all__ = [
    "available",
    "publish_graph",
    "attach_graph",
    "active_segments",
    "SharedGraphHandle",
]

try:  # pragma: no cover - import guard exercised on exotic platforms only
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None
    shared_memory = None

#: Header layout: num_nodes, num_ports, labels-blob length (bytes).
_HEADER = struct.Struct("<qqq")
_WORD = 8  # int64 column width

#: Segments published by THIS process (name -> SharedGraphHandle).
_PUBLISHED: dict[str, "SharedGraphHandle"] = {}

#: Segments attached by THIS process; kept open for the process lifetime
#: (numpy views and materialized graphs reference the mapped buffer).
_ATTACHED: dict[str, object] = {}


def available() -> bool:
    """Whether this platform can publish shared-memory graph segments."""
    return shared_memory is not None


def active_segments() -> list[str]:
    """Names of segments this process has published and not yet unlinked."""
    return sorted(_PUBLISHED)


class SharedGraphHandle:
    """Owner-side handle for one published graph segment."""

    __slots__ = ("name", "_shm")

    def __init__(self, name: str, shm) -> None:
        self.name = name
        self._shm = shm

    def unlink(self) -> None:
        """Release and remove the segment (idempotent, never raises)."""
        _PUBLISHED.pop(self.name, None)
        try:
            self._shm.close()
        except Exception:
            pass
        try:
            self._shm.unlink()
        except Exception:
            pass  # already gone (tracker cleanup, double unlink, ...)


def _pack_ints(buf, offset: int, values) -> int:
    n = len(values)
    struct.pack_into(f"<{n}q", buf, offset, *values)
    return offset + n * _WORD


def publish_graph(graph) -> SharedGraphHandle | None:
    """Publish ``graph``'s CSR into a fresh shared-memory segment.

    Returns the owner handle, or ``None`` when shared memory is
    unavailable or the segment cannot be created (e.g. ``/dev/shm`` is
    full) — callers treat ``None`` as "ship nothing, workers rebuild".
    """
    if shared_memory is None:
        return None
    from ..graphs.indexed import IndexedGraph

    indexed = IndexedGraph.of(graph)
    blob = pickle.dumps(indexed.labels, protocol=pickle.HIGHEST_PROTOCOL)
    ports = len(indexed.nbr)
    size = (
        _HEADER.size
        + (len(indexed.indptr) + 2 * ports) * _WORD
        + len(blob)
    )
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
    except Exception:
        return None
    try:
        buf = shm.buf
        _HEADER.pack_into(buf, 0, indexed.num_nodes, ports, len(blob))
        offset = _HEADER.size
        offset = _pack_ints(buf, offset, indexed.indptr)
        offset = _pack_ints(buf, offset, indexed.nbr)
        offset = _pack_ints(buf, offset, indexed.wt)
        buf[offset : offset + len(blob)] = blob
    except Exception:
        handle = SharedGraphHandle(shm.name, shm)
        handle.unlink()
        return None
    handle = SharedGraphHandle(shm.name, shm)
    _PUBLISHED[shm.name] = handle
    return handle


def attach_graph(name: str):
    """Attach a published segment and rebuild its :class:`Graph`.

    The returned graph's ``_adj`` rows are laid out in CSR order, so the
    rebuilt adjacency — and any view derived from it — is byte-identical
    to the publisher's.  Its cached indexed view is seeded directly from
    the mapped CSR (zero-copy numpy views when numpy is importable).
    Returns ``None`` when the segment cannot be attached; callers fall
    back to building the graph locally.
    """
    if shared_memory is None:
        return None
    from ..graphs.indexed import IndexedGraph
    from ..graphs.weighted_graph import Graph

    shm = _ATTACHED.get(name)
    if shm is None:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except Exception:
            return None
        # SharedMemory registers with the resource tracker on *attach* as
        # well as create (CPython gh-82300).  The plane only runs under
        # the fork start method — the attach map itself is inherited via
        # fork — so this worker shares the supervisor's tracker daemon
        # and the attach-side register is an idempotent set-add there,
        # not a second owner.  Do NOT unregister here: the daemon holds
        # one entry per name, and unregistering from N workers would
        # double-remove it and strip the supervisor-SIGKILL backstop.
        _ATTACHED[name] = shm
    buf = shm.buf
    n, ports, blob_len = _HEADER.unpack_from(buf, 0)
    offset = _HEADER.size
    indptr_end = offset + (n + 1) * _WORD
    nbr_end = indptr_end + ports * _WORD
    wt_end = nbr_end + ports * _WORD
    labels = pickle.loads(bytes(buf[wt_end : wt_end + blob_len]))
    csr_views = None
    try:
        import numpy as np

        csr_views = (
            np.frombuffer(buf, dtype=np.int64, count=n + 1, offset=offset),
            np.frombuffer(buf, dtype=np.int64, count=ports, offset=indptr_end),
            np.frombuffer(buf, dtype=np.int64, count=ports, offset=nbr_end),
        )
        for a in csr_views:
            a.flags.writeable = False
        indptr, nbr, wt = (a.tolist() for a in csr_views)
    except ImportError:
        indptr = list(struct.unpack_from(f"<{n + 1}q", buf, offset))
        nbr = list(struct.unpack_from(f"<{ports}q", buf, indptr_end))
        wt = list(struct.unpack_from(f"<{ports}q", buf, nbr_end))
    indexed = IndexedGraph.from_csr(labels, indptr, nbr, wt, csr_views=csr_views)
    graph = Graph()
    adj = graph._adj
    for i, u in enumerate(labels):
        row = {}
        for p in range(indptr[i], indptr[i + 1]):
            row[labels[nbr[p]]] = wt[p]
        adj[u] = row
    graph._num_edges = indexed.num_edges
    graph._indexed_view = indexed
    return graph
