"""Event-driven asynchronous simulation core.

The synchronous :class:`~repro.sim.Runner` executes the paper's lock-step
models: every message takes exactly one round, so its scheduler is a heap
of *distinct pending rounds*.  Real deployments are not lock-step — links
have heterogeneous latency, nodes wake when traffic arrives, and runs are
bounded by wall-clock or bandwidth budgets, not round counts.  This module
generalizes the distinct-round scheduler into a true event-driven core:

* a virtual-time **event heap**: a heap of distinct integer times, each
  owning a :class:`_Slot` of ordered events — message-delivery events
  (unicast, then broadcast) and node-wake events.  Within one time the
  slot's lists preserve global send order (the ``seq`` in the conceptual
  ``(time, kind, seq)`` event key), so execution is fully deterministic;
* **per-edge latency models** (:class:`UniformLatency`, the seeded
  :class:`RandomDelayLatency`, explicit :class:`EdgeTableLatency`
  tables): a message sent at time ``t`` over port ``p`` is delivered at
  ``t + delay(p)``;
* **stopping conditions** beyond the round budget: ``max_time`` (a
  duration horizon — simulation stops gracefully once virtual time passes
  it) and ``message_budget`` (a bandwidth cap — stops once that many
  messages have been sent), both reported via
  :attr:`EventRunner.stop_reason`;
* the **uniform-unit equivalence guarantee**: with the default
  ``unit`` latency model, :class:`EventRunner` is *differentially
  identical* to the synchronous :class:`~repro.sim.Runner` — same outputs,
  same :class:`~repro.sim.Metrics` (to the byte, including serialized
  store payloads).  The event loop is ordered to make this a theorem of
  the implementation, not an accident:

  1. at each time ``t``, delivery events run before wake events (a
     message sent at ``t - 1`` with delay 1 is readable at ``t``, exactly
     like the sync mailbox);
  2. within a time, unicast deliveries precede broadcast deliveries, each
     in global send order (the sync runner's delivery phase drains the
     unicast outbox columns before the broadcast records);
  3. awake nodes step in node-index order, and sends are metered/resolved
     only after *all* steps at ``t`` finish (so sleeping-model
     ``awake_stamp`` checks see the complete post-step picture, as in the
     sync delivery phase).

Engine selection
----------------
Algorithms construct runners through :func:`make_runner`, which consults
the ambient :func:`simulation_engine` context: outside any context (or
under ``engine="round"``) it returns the synchronous :class:`Runner`;
under ``engine="event"`` it returns an :class:`EventRunner` with the
context's latency model.  :func:`latency_bound` exposes the model's
worst-case per-edge delay so latency-aware protocols (e.g. Bellman-Ford's
horizon) can scale their time budgets; under the synchronous engine it is
1 and nothing changes.

Latency model strings (the sweep-facing ``latency_model`` axis):

* ``"unit"`` (aliases ``"sync"``, ``"uniform"``) — every edge has delay 1;
  representable by both engines, and the canonical value recorded in tidy
  rows of synchronous runs;
* ``"uniform:K"`` — every edge has integer delay ``K`` (a time-dilated
  synchronous execution);
* ``"random:K"`` — per-edge delays drawn uniformly from ``1..K`` by a
  seeded, label-keyed hash (deterministic per ``(seed, edge)`` across
  processes and worker counts, symmetric per undirected edge).

Sleeping-model note: in :data:`~repro.sim.Mode.SLEEPING` a message is
delivered iff its receiver was awake *at the send time* (the paper's
rule; under unit latency this is exactly the synchronous semantics).  The
decision is made when the send resolves and is final — a receiver that
halts while the message is in flight still counts it as delivered.
"""

from __future__ import annotations

import copy
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from heapq import heappop, heappush

from ..graphs import Graph
from ..graphs.indexed import IndexedGraph
from .faults import FaultModel, parse_fault_model
from .kernels import WAKE_HALT, WAKE_NEXT, kernel_for
from .metrics import Metrics
from .runner import _IDLE, _NONE, Context, Inbox, Mode, Runner, SimulationError

__all__ = [
    "LatencyModel",
    "UniformLatency",
    "RandomDelayLatency",
    "EdgeTableLatency",
    "parse_latency_model",
    "canonical_latency",
    "EngineConfig",
    "EngineStats",
    "simulation_engine",
    "current_engine",
    "latency_bound",
    "current_faults",
    "fault_horizon_factor",
    "make_runner",
    "EventRunner",
]


# ----------------------------------------------------------------------
# latency models
# ----------------------------------------------------------------------
class LatencyModel:
    """Per-edge message delays: ``delay(port) >= 1`` virtual time units.

    Subclasses define :attr:`name` (the canonical sweep-axis string
    recorded in tidy rows), :attr:`bound` (the worst-case per-edge delay —
    what :func:`latency_bound` reports to latency-aware protocols), and
    either :attr:`uniform_delay` (every edge the same) or
    :meth:`port_delays` (one integer per CSR port).
    """

    #: Canonical model string (``"unit"``, ``"uniform:3"``, ``"random:4"``).
    name: str = "unit"
    #: Worst-case per-edge delay (1 for the unit model).
    bound: int = 1
    #: The shared delay when the model is uniform, else ``None``.
    uniform_delay: int | None = None

    def port_delays(self, indexed: IndexedGraph) -> list[int]:
        """Per-port delay table, parallel to ``indexed.nbr``."""
        raise NotImplementedError


def _check_delay(delay: int, what: str) -> int:
    if not isinstance(delay, int) or isinstance(delay, bool) or delay < 1:
        raise ValueError(f"{what} must be an integer >= 1, got {delay!r}")
    return delay


class UniformLatency(LatencyModel):
    """Every edge has the same integer delay.

    ``UniformLatency(1)`` is the ``unit`` model — the network the paper's
    synchronous rounds describe, and the model under which
    :class:`EventRunner` matches :class:`~repro.sim.Runner` exactly.
    Larger delays give a time-dilated but otherwise synchronous-shaped
    execution (useful as a sanity axis: metrics that should be
    delay-invariant must not move).
    """

    def __init__(self, delay: int = 1) -> None:
        self.uniform_delay = _check_delay(delay, "uniform latency delay")
        self.bound = delay
        self.name = "unit" if delay == 1 else f"uniform:{delay}"

    def port_delays(self, indexed: IndexedGraph) -> list[int]:
        return [self.uniform_delay] * len(indexed.nbr)


class RandomDelayLatency(LatencyModel):
    """Seeded per-edge random delays, uniform on ``1..max_delay``.

    The delay of an edge is drawn from a :class:`random.Random` seeded by
    the string ``"{seed}|{max_delay}|{u!r}|{v!r}"`` with the endpoint
    reprs in sorted order — so delays are symmetric per undirected edge,
    identical across processes and worker counts (string seeding hashes
    deterministically), and independent of graph construction order.
    Distinct sweep seeds draw distinct delay tables, which is what makes
    ``latency_model="random:K"`` a real per-cell axis.
    """

    def __init__(self, max_delay: int, seed: int = 0) -> None:
        self.bound = _check_delay(max_delay, "random latency max_delay")
        self.seed = seed
        self.name = "unit" if max_delay == 1 else f"random:{max_delay}"

    def edge_delay(self, u: object, v: object) -> int:
        lo, hi = sorted((repr(u), repr(v)))
        rng = random.Random(f"{self.seed}|{self.bound}|{lo}|{hi}")
        return rng.randint(1, self.bound)

    def port_delays(self, indexed: IndexedGraph) -> list[int]:
        if self.bound == 1:
            return [1] * len(indexed.nbr)
        labels = indexed.labels
        delays: list[int] = []
        # One draw per undirected edge, mirrored to both ports: compute on
        # the canonical (sorted-repr) key so u->v and v->u always agree.
        cache: dict[tuple, int] = {}
        for i in range(indexed.num_nodes):
            u = labels[i]
            for k in range(indexed.indptr[i], indexed.indptr[i + 1]):
                v = labels[indexed.nbr[k]]
                key = tuple(sorted((repr(u), repr(v))))
                delay = cache.get(key)
                if delay is None:
                    delay = cache[key] = self.edge_delay(u, v)
                delays.append(delay)
        return delays


class EdgeTableLatency(LatencyModel):
    """Explicit per-edge delays from a ``{(u, v): delay}`` table.

    Lookups are symmetric (``(u, v)`` falls back to ``(v, u)``), and edges
    absent from the table use ``default``.  This is the API-level model
    for measured topologies (e.g. ping matrices); it has no sweep-string
    form — build it in code and pass it to :func:`simulation_engine` or
    :class:`EventRunner` directly.
    """

    def __init__(self, table: dict, default: int = 1) -> None:
        self.table = dict(table)
        self.default = _check_delay(default, "edge table default delay")
        for key, delay in self.table.items():
            _check_delay(delay, f"edge table delay for {key!r}")
        self.bound = max([self.default, *self.table.values()]) if self.table else self.default
        self.name = f"table:{len(self.table)}"
        self.uniform_delay = None if self.table else self.default

    def edge_delay(self, u: object, v: object) -> int:
        delay = self.table.get((u, v))
        if delay is None:
            delay = self.table.get((v, u), self.default)
        return delay

    def port_delays(self, indexed: IndexedGraph) -> list[int]:
        labels = indexed.labels
        delays: list[int] = []
        for i in range(indexed.num_nodes):
            u = labels[i]
            for k in range(indexed.indptr[i], indexed.indptr[i + 1]):
                delays.append(self.edge_delay(u, labels[indexed.nbr[k]]))
        return delays


def parse_latency_model(spec: "str | LatencyModel", seed: int = 0) -> LatencyModel:
    """Build a latency model from its sweep-axis string.

    ``"unit"``/``"sync"``/``"uniform"`` -> unit latency;
    ``"uniform:K"`` -> :class:`UniformLatency`; ``"random:K"`` ->
    :class:`RandomDelayLatency` seeded with ``seed``.  A
    :class:`LatencyModel` instance passes through unchanged.  Raises
    :class:`ValueError` on anything else — callers surface it as a spec
    or sweep error before any work runs.
    """
    if isinstance(spec, LatencyModel):
        return spec
    if not isinstance(spec, str):
        raise ValueError(f"latency model must be a string or LatencyModel, got {spec!r}")
    text = spec.strip().lower()
    if text in ("unit", "sync", "uniform"):
        return UniformLatency(1)
    head, sep, tail = text.partition(":")
    if sep:
        if head not in ("uniform", "random", "random-delay"):
            raise ValueError(
                f"latency model {spec!r}: unknown kind {head!r} before ':' "
                f"(options: 'unit', 'uniform:K', 'random:K')"
            )
        try:
            value = int(tail)
        except ValueError:
            raise ValueError(
                f"latency model {spec!r}: expected an integer bound after "
                f"'{head}:', got {tail!r}"
            ) from None
        if head == "uniform":
            return UniformLatency(value)
        if value == 1:
            return UniformLatency(1)
        return RandomDelayLatency(value, seed=seed)
    raise ValueError(
        f"unknown latency model {spec!r}; options: 'unit', 'uniform:K', 'random:K'"
    )


def canonical_latency(spec: "str | LatencyModel") -> str:
    """The canonical string of a latency model spec (``"unit"`` for sync).

    This is the value recorded in tidy rows and hashed into scenario
    digests — ``"sync"``, ``"uniform"``, ``"uniform:1"`` and ``"random:1"``
    all canonicalize to ``"unit"``, encoding the equivalence guarantee:
    a unit-latency event execution *is* the synchronous execution.
    """
    return parse_latency_model(spec, seed=0).name


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
class EngineStats:
    """Mutable run-outcome recorder attached to an :class:`EngineConfig`.

    Runners note their graceful-stop outcome here so callers that never
    see the runner instance (drivers run algorithms through their public
    entry points) can still surface ``stop_reason`` and the final virtual
    time as sweep columns.  When a cell runs several runners (recursive
    algorithms), the last non-``None`` stop reason and the largest final
    time win — the cell-level story of "did a budget cut this run short".
    """

    __slots__ = ("stop_reason", "virtual_time")

    def __init__(self) -> None:
        self.stop_reason: str | None = None
        self.virtual_time: int = 0

    def note(self, stop_reason: str | None, virtual_time: int) -> None:
        if stop_reason is not None:
            self.stop_reason = stop_reason
        if virtual_time > self.virtual_time:
            self.virtual_time = virtual_time


@dataclass(frozen=True)
class EngineConfig:
    """The ambient simulation engine: backend kind plus network model.

    ``faults`` is the parsed fault plane (``None`` when fault-free) —
    applied by *both* engines.  ``max_time`` / ``message_budget`` are the
    event engine's graceful stopping conditions; ``stats`` collects
    stop-reason/virtual-time outcomes from the runners built inside the
    context.
    """

    engine: str  # "round" | "event"
    latency: LatencyModel
    faults: FaultModel | None = None
    max_time: int | None = None
    message_budget: int | None = None
    stats: EngineStats = field(default_factory=EngineStats, compare=False)


_ENGINE_STACK: list[EngineConfig] = []


def current_engine() -> EngineConfig | None:
    """The innermost active :func:`simulation_engine` config, or ``None``."""
    return _ENGINE_STACK[-1] if _ENGINE_STACK else None


def latency_bound() -> int:
    """Worst-case per-edge delay of the ambient engine (1 when synchronous).

    Latency-aware protocols use this to scale their time budgets — e.g.
    Bellman-Ford's ``n``-round horizon becomes ``n * latency_bound()``
    so estimates can cross any shortest path under the slowest edges.
    """
    config = current_engine()
    return 1 if config is None else config.latency.bound


def current_faults() -> FaultModel | None:
    """The ambient fault plane, or ``None`` outside any faulted context.

    Drivers consult this to relax their oracles to the declared
    tolerances (e.g. distance correctness on surviving nodes under a
    crash plan) and to recompute the deterministic crash schedule.
    """
    config = current_engine()
    return None if config is None else config.faults


def fault_horizon_factor() -> int:
    """Time-budget slack demanded by the ambient fault plane (1 if none).

    The fault-plane analogue of :func:`latency_bound`: fault-aware
    protocols multiply their horizons by it so dropped messages can retry
    and restarted nodes can relearn before the protocol gives up.
    """
    plane = current_faults()
    return 1 if plane is None else plane.horizon_factor


@contextmanager
def simulation_engine(
    engine: str = "event",
    latency: "str | LatencyModel" = "unit",
    seed: int = 0,
    *,
    faults: "str | FaultModel | None" = None,
    max_time: int | None = None,
    message_budget: int | None = None,
):
    """Select the simulation engine for all :func:`make_runner` calls inside.

    ``engine="event"`` runs protocols on :class:`EventRunner` under the
    given ``latency`` model (a string axis value or a
    :class:`LatencyModel`); ``engine="round"`` pins the synchronous
    :class:`~repro.sim.Runner` and therefore requires the unit model.
    ``seed`` feeds seeded models (``random:K`` latency and every fault
    draw).  ``faults`` installs a fault plane honored by *both* engines;
    ``max_time`` / ``message_budget`` are event-engine stopping
    conditions (rejected under ``engine="round"``, which has no virtual
    clock to bound).  Contexts nest; the innermost wins.
    """
    if engine not in ("round", "event"):
        raise ValueError(f"unknown engine {engine!r}; options: 'round', 'event'")
    model = parse_latency_model(latency, seed=seed)
    if engine == "round" and model.name != "unit":
        raise ValueError(
            f"the synchronous 'round' engine cannot express latency model "
            f"{model.name!r}; use engine='event'"
        )
    if engine == "round" and (max_time is not None or message_budget is not None):
        raise ValueError(
            "max_time/message_budget are event-engine stopping conditions; "
            "use engine='event'"
        )
    plane = parse_fault_model(faults, seed=seed)
    config = EngineConfig(engine, model, plane, max_time, message_budget)
    _ENGINE_STACK.append(config)
    try:
        yield config
    finally:
        _ENGINE_STACK.pop()


def make_runner(
    graph: "Graph | IndexedGraph",
    algorithms: dict,
    mode: Mode = Mode.CONGEST,
    **kwargs,
):
    """Construct the ambient engine's runner (the library-wide entry point).

    Outside any :func:`simulation_engine` context — or under
    ``engine="round"`` — this is exactly ``Runner(graph, algorithms,
    mode, **kwargs)``; under ``engine="event"`` it is an
    :class:`EventRunner` carrying the context's latency model and
    stopping conditions.  Both engines inherit the context's fault
    plane.  All library algorithms build their runners through this
    factory, which is what lets one sweep flag re-run the whole catalog
    on the event core — or under a fault model.
    """
    config = current_engine()
    if config is None:
        return Runner(graph, algorithms, mode, **kwargs)
    if config.faults is not None:
        kwargs.setdefault("faults", config.faults)
    if config.engine == "round":
        return Runner(graph, algorithms, mode, **kwargs)
    if config.max_time is not None:
        kwargs.setdefault("max_time", config.max_time)
    if config.message_budget is not None:
        kwargs.setdefault("message_budget", config.message_budget)
    kwargs.setdefault("stats", config.stats)
    return EventRunner(graph, algorithms, mode, latency=config.latency, **kwargs)


# ----------------------------------------------------------------------
# the event-driven runner
# ----------------------------------------------------------------------
class _Slot:
    """All events scheduled for one virtual time, in processing order.

    ``unicasts`` and ``bcasts`` hold delivery events as ``(port_id,
    payload)`` pairs appended in global send order; ``wakes`` holds node
    indices (filtered against ``next_wake`` at processing time, exactly
    like the sync runner's round buckets).  Keeping the three kinds in
    separate ordered lists realizes the ``(time, kind, seq)`` event order
    without a per-event heap entry.
    """

    __slots__ = ("unicasts", "bcasts", "wakes")

    def __init__(self) -> None:
        self.unicasts: list = []
        self.bcasts: list = []
        self.wakes: list[int] = []


class EventRunner:
    """Asynchronous executor: the :class:`~repro.sim.Runner` semantics on a
    virtual-time event heap with per-edge latency.

    Drives the same :class:`~repro.sim.NodeAlgorithm` /
    :class:`~repro.sim.Context` / :class:`~repro.sim.Inbox` API as the
    synchronous runner — algorithms cannot tell which engine they run on
    except through message timing.  ``ctx.round`` is the node's current
    *virtual time*; ``ctx.wake_at`` / ``ctx.sleep_for`` schedule in the
    same currency.  Under the default unit latency model the execution is
    differentially identical to ``Runner`` (see the module docstring for
    the ordering argument).

    Parameters beyond the :class:`~repro.sim.Runner` set
    -----------------------------------------------------
    latency:
        A :class:`LatencyModel` or axis string (default ``"unit"``).
    max_time:
        Duration stopping: events at virtual times beyond this horizon
        are not processed; the run stops gracefully with
        ``stop_reason == "max_time"``.  (``max_rounds`` stays the *hard*
        budget — exceeding it raises, as in the sync runner.)
    message_budget:
        Bandwidth stopping: once this many messages have been sent the
        run stops gracefully with ``stop_reason == "message_budget"``
        (the in-flight batch still resolves — budgets bound work, they do
        not tear messages).

    ``edge_capacity`` is enforced per *send time*: at most that many
    messages may enter one directed edge per virtual time unit — the
    event-core reading of per-edge bandwidth, which degenerates to the
    paper's per-round capacity under unit latency.
    """

    def __init__(
        self,
        graph: "Graph | IndexedGraph",
        algorithms: dict,
        mode: Mode = Mode.CONGEST,
        *,
        latency: "str | LatencyModel | None" = None,
        round_width: int = 1,
        edge_capacity: int = 1,
        metrics: Metrics | None = None,
        max_rounds: int = 10_000_000,
        max_time: int | None = None,
        message_budget: int | None = None,
        faults: "str | FaultModel | None" = None,
        stats: EngineStats | None = None,
    ) -> None:
        indexed = graph if isinstance(graph, IndexedGraph) else IndexedGraph.of(graph)
        try:
            algorithms_by_index = [algorithms[label] for label in indexed.labels]
        except KeyError:
            missing = [u for u in indexed.labels if u not in algorithms]
            raise SimulationError(f"nodes without an algorithm: {missing[:5]}") from None
        self.graph = graph
        self.indexed = indexed
        self.algorithms = algorithms
        self.mode = mode
        self.latency = parse_latency_model(latency if latency is not None else "unit")
        self.round_width = round_width
        self.edge_capacity = edge_capacity
        self.metrics = metrics if metrics is not None else Metrics()
        self.max_rounds = max_rounds
        self.max_time = max_time
        self.message_budget = message_budget
        self.faults = parse_fault_model(faults)
        # Restart snapshots: a rebooted node comes back with *fresh*
        # algorithm state (see Runner) — captured before the first step.
        if self.faults is not None and self.faults.crashes and self.faults.restart_after:
            self._restart_snapshots = [copy.deepcopy(alg) for alg in algorithms_by_index]
        else:
            self._restart_snapshots = None
        self._stats = stats
        #: ``None`` (ran to quiescence), ``"max_time"``, or ``"message_budget"``.
        self.stop_reason: str | None = None
        self._algorithms_by_index = algorithms_by_index
        # Private engine state — the event runner never touches the
        # IndexedGraph engine pool (that slot belongs to the sync Runner's
        # checkout protocol).
        views = indexed.node_views()
        self._contexts = [
            Context(self, label, i, views[i]) for i, label in enumerate(indexed.labels)
        ]
        self._inboxes = [Inbox() for _ in range(indexed.num_nodes)]
        self._edge_load = [0] * len(indexed.nbr)
        # Columnar outboxes shared with Context.send/broadcast — identical
        # layout to the sync runner so Context needs no changes.
        self._out_ports: list[int] = []
        self._out_payloads: list[object] = []
        self._bcast_src: list[int] = []
        self._bcast_payloads: list[object] = []
        self._touched: list[int] = []

    # ------------------------------------------------------------------
    def run(self) -> Metrics:
        """Process events until quiescence or a stopping condition."""
        indexed = self.indexed
        n = indexed.num_nodes
        labels = indexed.labels
        nbr = indexed.nbr
        indptr = indexed.indptr
        port_src = indexed.port_src_labels()
        contexts = self._contexts
        on_rounds = [alg.on_round for alg in self._algorithms_by_index]
        inboxes = self._inboxes
        out_ports = self._out_ports
        out_payloads = self._out_payloads
        bcast_src = self._bcast_src
        bcast_payloads = self._bcast_payloads
        edge_load = self._edge_load
        touched = self._touched
        metrics = self.metrics
        max_rounds = self.max_rounds
        max_time = self.max_time
        message_budget = self.message_budget
        sleeping = self.mode is Mode.SLEEPING
        # Mirror the sync runner's contract: only metric *subclasses* see
        # the in-phase round stamp (plain Metrics must come out of either
        # engine with byte-identical serialized state, current_round
        # included).
        fast = type(metrics) is Metrics
        uniform = self.latency.uniform_delay
        delays = None if uniform is not None else self.latency.port_delays(indexed)
        # Batch kernels engage only under unit latency, where the event
        # schedule coincides with the sync runner's rounds (the regime the
        # differential suite pins).  All other gates live in kernel_for.
        kernel = kernel_for(self) if uniform == 1 else None

        heap: list[int] = []
        slots: dict[int, _Slot] = {}

        def slot_for(time: int) -> _Slot:
            slot = slots.get(time)
            if slot is None:
                slot = slots[time] = _Slot()
                heappush(heap, time)
            return slot

        next_wake = [0] * n
        awake_stamp = [-1] * n if sleeping else None
        if n:
            first = _Slot()
            first.wakes = list(range(n))
            slots[0] = first
            heap.append(0)
        last_step = -1
        messages_sent = 0
        stop_reason: str | None = None
        # --- fault plane (repro.sim.faults) ---------------------------
        # ``plane is None`` on fault-free runs keeps every loop below on
        # the exact pre-fault path.  Crash events fire at the top of their
        # time slot (before deliveries: a dead receiver loses arrivals);
        # restarts fire after deliveries but before wakes, so a node
        # restarting at ``t`` misses messages arriving at ``t`` — exactly
        # the sync engine's semantics, where those messages resolved in
        # the previous round's delivery phase while the node was down.
        plane = self.faults
        crashed: list[bool] | None = None
        crash_at: dict[int, list[int]] | None = None
        restart_at: dict[int, list[int]] = {}
        if plane is not None:
            crashed = [False] * n
            if plane.crashes:
                index_of = {label: i for i, label in enumerate(labels)}
                crash_at = {}
                for node, (when, restart) in plane.crash_plan(labels).items():
                    crash_at.setdefault(when, []).append(index_of[node])
                    if restart is not None:
                        restart_at.setdefault(restart, []).append(index_of[node])
                # Force a slot at every fault-event time so crashes and
                # restarts fire even in quiet stretches.
                for when in (*crash_at, *restart_at):
                    slot_for(when)

        while heap:
            t = heappop(heap)
            if max_time is not None and t > max_time:
                stop_reason = "max_time"
                break
            slot = slots.pop(t)

            if crash_at is not None:
                for i in crash_at.get(t, ()):
                    crashed[i] = True
                    metrics.record_crash(labels[i])
                    box = inboxes[i]
                    if box.senders:
                        # Buffered-but-unread messages die with the node;
                        # they were metered as delivered sends, so only the
                        # fault counter moves.
                        metrics.messages_dropped += len(box.senders)
                        box.senders.clear()
                        box.payloads.clear()

            # --- deliveries: unicasts, then broadcasts, in send order ----
            for port_id, payload in slot.unicasts:
                dst_i = nbr[port_id]
                if crashed is not None and crashed[dst_i]:
                    metrics.messages_dropped += 1
                    continue
                if contexts[dst_i]._halted:
                    continue
                box = inboxes[dst_i]
                box.senders.append(port_src[port_id])
                box.payloads.append(payload)
                if not sleeping:
                    cur = next_wake[dst_i]
                    if cur == _NONE or cur > t:
                        next_wake[dst_i] = t
                        slot.wakes.append(dst_i)
            for port_id, payload in slot.bcasts:
                dst_i = nbr[port_id]
                if crashed is not None and crashed[dst_i]:
                    metrics.messages_dropped += 1
                    continue
                if contexts[dst_i]._halted:
                    continue
                box = inboxes[dst_i]
                box.senders.append(port_src[port_id])
                box.payloads.append(payload)
                if not sleeping:
                    cur = next_wake[dst_i]
                    if cur == _NONE or cur > t:
                        next_wake[dst_i] = t
                        slot.wakes.append(dst_i)

            if restart_at:
                for i in restart_at.get(t, ()):
                    fresh = copy.deepcopy(self._restart_snapshots[i])
                    self._algorithms_by_index[i] = fresh
                    self.algorithms[labels[i]] = fresh
                    on_rounds[i] = fresh.on_round
                    ctx = contexts[i]
                    ctx._halted = False
                    ctx._next_wake = None
                    crashed[i] = False
                    metrics.record_recovery(labels[i])
                    next_wake[i] = t
                    slot.wakes.append(i)

            # --- wakes: filter stale entries, step in node-index order ---
            awake: list[int] = []
            if crashed is None:
                for i in slot.wakes:
                    if next_wake[i] == t:
                        next_wake[i] = _NONE
                        awake.append(i)
            else:
                for i in slot.wakes:
                    if next_wake[i] == t:
                        next_wake[i] = _NONE
                        if not crashed[i]:
                            awake.append(i)
            if awake:
                if t >= max_rounds:
                    raise SimulationError(f"exceeded max_rounds={max_rounds}")
                last_step = t
                awake.sort()
                if not fast:
                    metrics.current_round = t
                nxt = t + 1
                codes = None
                if kernel is not None:
                    codes = kernel.on_round_batch(
                        t, awake, inboxes,
                        out_ports, out_payloads, bcast_src, bcast_payloads,
                    )
                if codes is not None:
                    for k, i in enumerate(awake):
                        if sleeping:
                            awake_stamp[i] = t
                        box = inboxes[i]
                        if box.senders:
                            box.senders.clear()
                            box.payloads.clear()
                        wake = codes[k]
                        if wake == WAKE_NEXT:
                            s = nxt
                        elif wake >= 0:
                            s = wake
                        else:
                            if wake == WAKE_HALT:
                                contexts[i]._halted = True
                            continue  # halted or idle: no wake scheduled
                        next_wake[i] = s
                        slot_for(s).wakes.append(i)
                else:
                    for i in awake:
                        if sleeping:
                            awake_stamp[i] = t
                        ctx = contexts[i]
                        ctx.round = t
                        ctx._next_wake = None
                        box = inboxes[i]
                        on_rounds[i](ctx, box)
                        if box.senders:
                            box.senders.clear()
                            box.payloads.clear()
                        wake = ctx._next_wake
                        if ctx._halted or wake is _IDLE:
                            continue
                        s = wake if wake is not None else nxt
                        next_wake[i] = s
                        slot_for(s).wakes.append(i)
                for i in awake:
                    metrics.record_awake(labels[i], self.round_width)

            # --- send resolution: meter, decide delivery, schedule -------
            if out_ports or bcast_src:
                if not fast:
                    metrics.current_round = t
                if plane is not None:
                    # Faulted resolution: drop/dup decided at send time, on
                    # the sending side of the link (see DESIGN.md), with
                    # draws keyed and occurrence-counted exactly like the
                    # sync engine's delivery phase — unit-latency faulted
                    # runs agree across engines.
                    occ: dict[int, int] = {}
                    for port_id, payload in zip(out_ports, out_payloads):
                        dst_i = nbr[port_id]
                        messages_sent += 1
                        src = port_src[port_id]
                        dst = labels[dst_i]
                        k = occ.get(port_id, 0)
                        occ[port_id] = k + 1
                        if plane.drop_message(src, dst, t, k) or crashed[dst_i]:
                            metrics.record_dropped(src, dst)
                            continue
                        if sleeping:
                            delivered = (
                                awake_stamp[dst_i] == t
                                and not contexts[dst_i]._halted
                            )
                        else:
                            delivered = True
                        metrics.record_send(src, dst, delivered)
                        if delivered and not contexts[dst_i]._halted:
                            arrival = t + (
                                uniform if uniform is not None else delays[port_id]
                            )
                            target = slot_for(arrival).unicasts
                            target.append((port_id, payload))
                            if plane.duplicate_message(src, dst, t, k):
                                target.append((port_id, payload))
                                metrics.record_duplicated(src, dst)
                    for src_i, payload in zip(bcast_src, bcast_payloads):
                        sender = labels[src_i]
                        for port_id in range(indptr[src_i], indptr[src_i + 1]):
                            dst_i = nbr[port_id]
                            messages_sent += 1
                            dst = labels[dst_i]
                            k = occ.get(port_id, 0)
                            occ[port_id] = k + 1
                            if plane.drop_message(sender, dst, t, k) or crashed[dst_i]:
                                metrics.record_dropped(sender, dst)
                                continue
                            if sleeping:
                                delivered = (
                                    awake_stamp[dst_i] == t
                                    and not contexts[dst_i]._halted
                                )
                            else:
                                delivered = True
                            metrics.record_send(sender, dst, delivered)
                            if delivered and not contexts[dst_i]._halted:
                                arrival = t + (
                                    uniform if uniform is not None else delays[port_id]
                                )
                                target = slot_for(arrival).bcasts
                                target.append((port_id, payload))
                                if plane.duplicate_message(sender, dst, t, k):
                                    target.append((port_id, payload))
                                    metrics.record_duplicated(sender, dst)
                else:
                    for port_id, payload in zip(out_ports, out_payloads):
                        dst_i = nbr[port_id]
                        messages_sent += 1
                        if sleeping:
                            delivered = (
                                awake_stamp[dst_i] == t and not contexts[dst_i]._halted
                            )
                        else:
                            delivered = True
                        metrics.record_send(port_src[port_id], labels[dst_i], delivered)
                        if delivered and not contexts[dst_i]._halted:
                            arrival = t + (uniform if uniform is not None else delays[port_id])
                            slot_for(arrival).unicasts.append((port_id, payload))
                    for src_i, payload in zip(bcast_src, bcast_payloads):
                        sender = labels[src_i]
                        for port_id in range(indptr[src_i], indptr[src_i + 1]):
                            dst_i = nbr[port_id]
                            messages_sent += 1
                            if sleeping:
                                delivered = (
                                    awake_stamp[dst_i] == t
                                    and not contexts[dst_i]._halted
                                )
                            else:
                                delivered = True
                            metrics.record_send(sender, labels[dst_i], delivered)
                            if delivered and not contexts[dst_i]._halted:
                                arrival = t + (
                                    uniform if uniform is not None else delays[port_id]
                                )
                                slot_for(arrival).bcasts.append((port_id, payload))
                out_ports.clear()
                out_payloads.clear()
                bcast_src.clear()
                bcast_payloads.clear()
                for port_id in touched:
                    edge_load[port_id] = 0
                touched.clear()
                if message_budget is not None and messages_sent >= message_budget:
                    stop_reason = "message_budget"
                    break

        if kernel is not None:
            kernel.finalize()
        final_time = (last_step + 1) * self.round_width
        metrics.record_rounds(final_time)
        self.stop_reason = stop_reason
        if self._stats is not None:
            self._stats.note(stop_reason, final_time)
        return metrics
