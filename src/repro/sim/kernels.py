"""Batch-kernel round API: step a whole round's awake set as columns.

The columnar message plane (PRs 1-2) stops at the algorithm boundary —
per-node ``on_round`` callbacks still execute scalar Python, one attribute
dance and one wake computation per node per round.  A :class:`BatchKernel`
lifts that boundary: for a protocol that opts in, the engine hands the
kernel the *whole round* — the sorted awake index list, the per-node inbox
columns, and the engine's own outbox columns — and the kernel returns one
wake code per awake node.  The engine then applies those codes with exactly
the scheduling logic of the scalar path.

The contract is **metering parity**: a kernel round must leave every
observable — message counts, per-edge counters, wake/energy accounting,
round totals, and the algorithm's final local state — byte-identical to the
scalar path.  The engine enforces the cheap half mechanically (it keeps the
delivery phase, the wake logs, and the scheduler untouched, so a kernel
that emits the same outbox columns and the same wake decisions *cannot*
diverge); the differential suite in ``tests/test_kernels.py`` pins the
rest across the scenario catalog.

Rules a kernel must follow (the engine relies on them):

* emit at most one message per port per round (the engine skips the
  per-port capacity counters for kernel rounds; kernels are only built
  when ``edge_capacity == 1``);
* append unicasts to ``out_ports``/``out_payloads`` (port ids) and
  broadcasts to ``bcast_src``/``bcast_payloads`` (node indices) in the
  same order the scalar path would — inbox order is observable;
* never mutate the inbox columns or the shared CSR arrays (lint rule
  P206); the engine truncates inboxes after the kernel returns;
* a broadcast by a degree-0 node appends **no** record (mirroring
  :meth:`Context.broadcast`'s early return).

Kernels may *decline* a round by returning ``None`` before mutating any
state; the engine then runs the scalar path for that round.  This keeps
kernels honest on protocols (Boruvka) where only some rounds have a
regular batch shape.

The ``backend`` knob selects the dispatch path: ``"numpy"`` (default when
numpy is importable) enables batch kernels, ``"scalar"`` forces the
per-node path everywhere.  The knob is **provenance, not physics**: both
backends produce byte-identical metrics and results, so it is never
digested and every existing store resumes under either setting.
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import Metrics

try:  # The numpy backend is optional; everything degrades to scalar.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via force_scalar tests
    _np = None

__all__ = [
    "BatchKernel",
    "WAKE_NEXT",
    "WAKE_IDLE",
    "WAKE_HALT",
    "numpy_or_none",
    "available_backends",
    "default_backend",
    "current_backend",
    "set_backend",
    "use_backend",
    "kernel_for",
]

#: Wake codes a kernel returns per awake node.  Any value ``>= 0`` is an
#: absolute wake round (the ``ctx.wake_at`` analog, must exceed the current
#: round); the negative codes mirror the scalar dispositions.
WAKE_NEXT = -2  #: stay awake: wake next round (no ctx call made).
WAKE_IDLE = -3  #: ``ctx.idle()``: sleep with no schedule (wake-on-message).
WAKE_HALT = -4  #: ``ctx.halt()``: never step again; output is in state.


def numpy_or_none():
    """The numpy module when importable, else ``None`` (kernels vector-gate)."""
    return _np


# ----------------------------------------------------------------------
# backend knob (provenance-only; never digested)
# ----------------------------------------------------------------------
_BACKENDS = ("scalar", "numpy")
_requested: str | None = None  # None -> default


def available_backends() -> tuple[str, ...]:
    """Backends this interpreter can actually run."""
    return _BACKENDS if _np is not None else ("scalar",)


def default_backend() -> str:
    """``"numpy"`` when numpy is importable, else ``"scalar"``."""
    return "numpy" if _np is not None else "scalar"


def current_backend() -> str:
    """The active backend after resolving requests against availability.

    A ``"numpy"`` request on a numpy-less interpreter resolves to
    ``"scalar"`` — the graceful-fallback contract the CI matrix pins.
    """
    name = _requested if _requested is not None else default_backend()
    if name == "numpy" and _np is None:
        return "scalar"
    return name


def set_backend(name: str | None) -> None:
    """Request a backend (``None`` restores the default)."""
    global _requested
    if name is not None and name not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {_BACKENDS}"
        )
    _requested = name


@contextmanager
def use_backend(name: str | None):
    """Scoped :func:`set_backend` (restores the previous request)."""
    global _requested
    prev = _requested
    set_backend(name)
    try:
        yield
    finally:
        _requested = prev


# ----------------------------------------------------------------------
# kernel protocol
# ----------------------------------------------------------------------
class BatchKernel:
    """One protocol's vectorized round step.

    Subclasses hold whatever per-node state columns they need (built from
    the algorithm instances at construction) and implement
    :meth:`on_round_batch`.  Kernels that mirror instance state in their
    own columns must write it back in :meth:`finalize` — drivers read
    results off the algorithm instances after ``run()``.
    """

    def on_round_batch(
        self, r, awake, inboxes,
        out_ports, out_payloads, bcast_src, bcast_payloads,
    ):
        """Step every node in ``awake`` for round ``r``.

        Returns a list of wake codes aligned with ``awake``, or ``None``
        to decline the round (the engine then runs the scalar path; the
        kernel must not have mutated anything before declining).
        """
        raise NotImplementedError

    def finalize(self) -> None:
        """Write kernel state back onto the algorithm instances."""


def kernel_for(runner) -> BatchKernel | None:
    """Build the batch kernel for this run, or ``None`` for scalar.

    Centralizes every dispatch gate so both engines agree:

    * the active backend enables kernels (``scalar`` disables them);
    * plain :class:`Metrics` only — tracing subclasses take per-event
      hooks the batch path does not emit;
    * no fault plane (fault draws happen per delivered message; see
      :attr:`repro.sim.faults.FaultModel.batch_safe`);
    * ``edge_capacity == 1`` (kernels skip per-port capacity counters);
    * a homogeneous algorithm roster whose class opts in via
      ``batch_kernel`` (which may itself return ``None``).
    """
    if current_backend() == "scalar":
        return None
    if type(runner.metrics) is not Metrics:
        return None
    plane = runner.faults
    if plane is not None and not getattr(plane, "batch_safe", False):
        return None
    if runner.edge_capacity != 1:
        return None
    algorithms = runner._algorithms_by_index
    if not algorithms:
        return None
    cls = type(algorithms[0])
    for alg in algorithms:
        if type(alg) is not cls:
            return None
    hook = getattr(cls, "batch_kernel", None)
    if hook is None:
        return None
    return hook(runner)
