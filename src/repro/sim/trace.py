"""Execution tracing: per-round load profiles and awake timelines.

:class:`TracingMetrics` is a drop-in :class:`~repro.sim.Metrics` that
additionally records *when* things happened: messages per round, awake
nodes per round, and per-edge time series.  Useful for debugging schedule
bugs in sleeping-model protocols (e.g. "who was awake when this offer was
sent?") and for the congestion-profile example.

Costs: memory linear in (active rounds + messages); use on experiment-
sized runs, not the biggest sweeps.
"""

from __future__ import annotations

from collections import Counter

from .metrics import Metrics

__all__ = ["TracingMetrics"]


class TracingMetrics(Metrics):
    """Metrics plus time-resolved message and wake records."""

    def __init__(self) -> None:
        super().__init__()
        #: round -> number of messages sent in that round (phase-absolute).
        self.messages_by_round: Counter = Counter()
        #: round -> number of awake nodes.
        self.awake_by_round: Counter = Counter()
        #: (edge, round) -> messages, for per-edge congestion timelines.
        self.edge_timeline: Counter = Counter()

    def _now(self) -> int:
        return self.rounds + self.current_round

    def record_send(self, src: object, dst: object, delivered: bool) -> None:
        super().record_send(src, dst, delivered)
        now = self._now()
        self.messages_by_round[now] += 1
        self.edge_timeline[((src, dst), now)] += 1

    def record_awake(self, node: object, rounds: int = 1) -> None:
        super().record_awake(node, rounds)
        self.awake_by_round[self._now()] += 1

    # -- analysis helpers -------------------------------------------------
    def peak_round_load(self) -> tuple[int, int]:
        """``(round, messages)`` of the busiest round (0, 0 when silent)."""
        if not self.messages_by_round:
            return (0, 0)
        busiest = max(self.messages_by_round, key=lambda r: self.messages_by_round[r])
        return busiest, self.messages_by_round[busiest]

    def awake_fraction_profile(self, num_nodes: int, buckets: int = 10) -> list[float]:
        """Average awake fraction per time bucket across the execution.

        Every round lands in exactly one bucket: the last bucket extends to
        the horizon, so the ``horizon % buckets`` tail rounds are averaged
        into it rather than silently dropped (e.g. horizon 25 over 10
        buckets gives nine 2-round buckets and one 7-round tail bucket —
        rounds 18..24 all counted).
        """
        if not self.awake_by_round or num_nodes == 0:
            return [0.0] * buckets
        horizon = max(self.awake_by_round) + 1
        width = max(1, horizon // buckets)
        out = []
        for b in range(buckets):
            lo = b * width
            hi = horizon if b == buckets - 1 else min((b + 1) * width, horizon)
            if lo >= hi:
                out.append(0.0)
                continue
            total = sum(self.awake_by_round.get(r, 0) for r in range(lo, hi))
            out.append(total / ((hi - lo) * num_nodes))
        return out

    def edge_profile(self, u: object, v: object) -> dict[int, int]:
        """Round -> messages for the undirected edge ``{u, v}``."""
        out: dict[int, int] = {}
        for (edge, r), count in self.edge_timeline.items():
            if edge in ((u, v), (v, u)):
                out[r] = out.get(r, 0) + count
        return out
