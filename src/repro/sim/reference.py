"""The original dict-of-objects simulator, retained as a semantic oracle.

:class:`ReferenceRunner` is the pre-indexed :class:`~repro.sim.Runner`
verbatim: dict mailboxes, a heap-plus-set wake schedule, per-message
``Counter`` capacity accounting, and the ``sorted(awake, key=repr)`` round
order.  It is deliberately *not* optimized — its whole job is to define the
model semantics so that differential tests can assert the fast indexed
engine produces identical metrics (rounds, messages, lost messages, energy,
congestion) on the same protocols.

Use it only in tests and debugging; everything else should go through
:class:`repro.sim.Runner`.
"""

from __future__ import annotations

import heapq
from collections import Counter

from ..graphs import Graph
from .metrics import Metrics
from .runner import _IDLE, Inbox, Mode, NodeAlgorithm, SimulationError

__all__ = ["ReferenceRunner"]


class _ReferenceContext:
    """Per-node handle of the reference engine (same API as ``Context``)."""

    __slots__ = ("node", "round", "_runner", "_neighbors", "_weights", "_next_wake", "_halted")

    def __init__(self, runner: "ReferenceRunner", node: object) -> None:
        self.node = node
        self.round = 0
        self._runner = runner
        self._neighbors = tuple(runner.graph.neighbors(node))
        self._weights = {v: runner.graph.weight(node, v) for v in self._neighbors}
        self._next_wake: int | None = None
        self._halted = False

    @property
    def neighbors(self) -> tuple:
        return self._neighbors

    @property
    def edge_weights(self) -> tuple:
        return tuple(self._weights[v] for v in self._neighbors)

    def weight(self, neighbor: object) -> int:
        return self._weights[neighbor]

    @property
    def degree(self) -> int:
        return len(self._neighbors)

    def send(self, neighbor: object, payload: object) -> None:
        if neighbor not in self._weights:
            raise SimulationError(f"{self.node!r} tried to message non-neighbor {neighbor!r}")
        self._runner._enqueue(self.node, neighbor, payload)

    def broadcast(self, payload: object) -> None:
        for v in self._neighbors:
            self.send(v, payload)

    def wake_at(self, round_number: int) -> None:
        if round_number <= self.round:
            raise SimulationError(
                f"{self.node!r} scheduled wake at {round_number} <= current round {self.round}"
            )
        if self._next_wake is None or round_number < self._next_wake:
            self._next_wake = round_number

    def sleep_for(self, rounds: int) -> None:
        self.wake_at(self.round + rounds)

    def wake_at_unchecked(self, round_number: int) -> None:
        self._next_wake = round_number

    def idle(self) -> None:
        self._next_wake = _IDLE

    def halt(self) -> None:
        self._halted = True


class ReferenceRunner:
    """Reference (slow, dict-based) executor with the original semantics."""

    def __init__(
        self,
        graph: Graph,
        algorithms: dict,
        mode: Mode = Mode.CONGEST,
        *,
        round_width: int = 1,
        edge_capacity: int = 1,
        metrics: Metrics | None = None,
        max_rounds: int = 10_000_000,
    ) -> None:
        missing = [u for u in graph.nodes() if u not in algorithms]
        if missing:
            raise SimulationError(f"nodes without an algorithm: {missing[:5]}")
        self.graph = graph
        self.algorithms = algorithms
        self.mode = mode
        self.round_width = round_width
        self.edge_capacity = edge_capacity
        self.metrics = metrics if metrics is not None else Metrics()
        self.max_rounds = max_rounds
        self._contexts = {u: _ReferenceContext(self, u) for u in graph.nodes()}
        # Mailboxes are Inbox views (same shape the fast engine hands out),
        # so the oracle can run the library's real algorithms — which read
        # the columnar ``senders`` / ``payloads`` attributes — not just the
        # differential-test protocols.
        self._mailboxes: dict[object, Inbox] = {u: Inbox() for u in graph.nodes()}
        self._outbox: list[tuple[object, object, object]] = []
        self._edge_load: Counter = Counter()

    # ------------------------------------------------------------------
    def _enqueue(self, src: object, dst: object, payload: object) -> None:
        self._edge_load[(src, dst)] += 1
        if self._edge_load[(src, dst)] > self.edge_capacity:
            raise SimulationError(
                f"edge capacity exceeded: {src!r}->{dst!r} sent "
                f"{self._edge_load[(src, dst)]} messages in one round "
                f"(capacity {self.edge_capacity})"
            )
        self._outbox.append((src, dst, payload))

    # ------------------------------------------------------------------
    def run(self) -> Metrics:
        """Simulate until quiescence; return the (possibly shared) metrics."""
        self._wake_heap: list[int] = []
        self._wake_rounds: dict[int, set] = {}
        self._next_wake_of: dict[object, int | None] = {}
        for u in self.graph.nodes():
            self._schedule(u, 0)
        last_round = -1

        while self._wake_heap:
            r = heapq.heappop(self._wake_heap)
            bucket = self._wake_rounds.pop(r, set())
            awake = {
                u
                for u in bucket
                if self._next_wake_of.get(u) == r and not self._contexts[u]._halted
            }
            if not awake:
                continue
            if r >= self.max_rounds:
                raise SimulationError(f"exceeded max_rounds={self.max_rounds}")
            last_round = r

            self.metrics.current_round = r
            self._outbox = []
            self._edge_load = Counter()
            for u in sorted(awake, key=repr):
                ctx = self._contexts[u]
                ctx.round = r
                ctx._next_wake = None
                self._next_wake_of[u] = None
                inbox = self._mailboxes[u]
                self._mailboxes[u] = Inbox()
                self.algorithms[u].on_round(ctx, inbox)
                self.metrics.record_awake(u, self.round_width)

            for u in awake:
                ctx = self._contexts[u]
                if ctx._halted or ctx._next_wake is _IDLE:
                    continue
                nxt = ctx._next_wake if ctx._next_wake is not None else r + 1
                self._schedule(u, nxt)

            for src, dst, payload in self._outbox:
                if self.mode is Mode.SLEEPING:
                    delivered = dst in awake and not self._contexts[dst]._halted
                    self.metrics.record_send(src, dst, delivered)
                    if delivered:
                        box = self._mailboxes[dst]
                        box.senders.append(src)
                        box.payloads.append(payload)
                else:
                    self.metrics.record_send(src, dst, True)
                    if not self._contexts[dst]._halted:
                        box = self._mailboxes[dst]
                        box.senders.append(src)
                        box.payloads.append(payload)
                        self._schedule(dst, r + 1)

        self.metrics.record_rounds((last_round + 1) * self.round_width)
        return self.metrics

    def _schedule(self, node: object, round_number: int) -> None:
        current = self._next_wake_of.get(node)
        if current is not None and current <= round_number:
            return
        self._next_wake_of[node] = round_number
        bucket = self._wake_rounds.get(round_number)
        if bucket is None:
            self._wake_rounds[round_number] = {node}
            heapq.heappush(self._wake_heap, round_number)
        else:
            bucket.add(node)
