"""Complexity metrics for simulated distributed executions.

The paper's claims are stated in four currencies (Sections 1.1 and 1.2):

* **time** — number of lock-step rounds until all nodes have their outputs;
* **message complexity** — total messages sent network-wide;
* **congestion** — the maximum, over directed edges, of messages sent
  through that edge during the whole execution;
* **energy** — the maximum, over nodes, of rounds in which the node is awake.

:class:`Metrics` records all four, plus per-node subproblem participation
(to validate Lemma 2.4) and lost-message counts (sleeping model).  Metrics
objects merge, so a recursive algorithm's totals are honest sums over its
phases.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["Metrics"]


class Metrics:
    """Mutable accumulator of execution costs.

    Directed edge counts are keyed ``(src, dst)``; the undirected per-edge
    congestion used in the paper's statements is exposed via
    :meth:`edge_congestion` / :attr:`max_congestion` (max over directions —
    the sleeping-model definition "at most T messages through it in each
    direction" makes per-direction the faithful reading).
    """

    def __init__(self) -> None:
        self.rounds: int = 0
        self.total_messages: int = 0
        self.lost_messages: int = 0
        self.edge_messages: Counter = Counter()
        self.awake_rounds: Counter = Counter()
        self.subproblem_participation: Counter = Counter()
        # Fault-plane meters (repro.sim.faults): all stay zero on fault-free
        # runs, and to_dict() omits them when zero, so serialized metrics
        # remain byte-identical to pre-fault stores.
        self.messages_dropped: int = 0
        self.messages_duplicated: int = 0
        self.nodes_crashed: int = 0
        self.recoveries: int = 0
        # In-phase round of the currently executing runner; set by Runner so
        # subclasses can timestamp individual sends (see repro.core.apsp).
        self.current_round: int = 0

    # ------------------------------------------------------------------
    # recording (called by the runner)
    # ------------------------------------------------------------------
    def record_send(self, src: object, dst: object, delivered: bool) -> None:
        """Count one message on directed edge ``src -> dst``."""
        self.total_messages += 1
        self.edge_messages[(src, dst)] += 1
        if not delivered:
            self.lost_messages += 1

    def record_awake(self, node: object, rounds: int = 1) -> None:
        """Credit ``rounds`` awake rounds to ``node``."""
        self.awake_rounds[node] += rounds

    def record_rounds(self, rounds: int) -> None:
        """Extend the global round clock by ``rounds``."""
        self.rounds += rounds

    def record_participation(self, node: object) -> None:
        """Note that ``node`` took part in one (sub)problem (Lemma 2.4)."""
        self.subproblem_participation[node] += 1

    # -- fault-plane events (called only by faulted engine paths) -------
    def record_dropped(self, src: object, dst: object) -> None:
        """One message destroyed by the fault plane at the link.

        The send still happened — it counts toward message/congestion
        totals like any other send — but it reaches nobody; the loss is
        a *fault* loss (``messages_dropped``), distinct from the sleeping
        model's ``lost_messages`` currency.
        """
        self.total_messages += 1
        self.edge_messages[(src, dst)] += 1
        self.messages_dropped += 1

    def record_duplicated(self, src: object, dst: object) -> None:
        """One fault-injected duplicate delivery on ``src -> dst``.

        Duplicates are artifacts of the network, not protocol work: they
        bypass edge-capacity metering and do not inflate message or
        congestion totals — only this counter.
        """
        self.messages_duplicated += 1

    def record_crash(self, node: object) -> None:
        """``node`` crashed (fault plane); its pending inbox is destroyed."""
        self.nodes_crashed += 1

    def record_recovery(self, node: object) -> None:
        """``node`` restarted with fresh algorithm state after a crash."""
        self.recoveries += 1

    # ------------------------------------------------------------------
    # derived quantities (the paper's four complexity measures)
    # ------------------------------------------------------------------
    @property
    def max_congestion(self) -> int:
        """Max messages through any directed edge — the congestion measure."""
        if not self.edge_messages:
            return 0
        return max(self.edge_messages.values())

    @property
    def max_energy(self) -> int:
        """Max awake rounds over nodes — the energy complexity measure."""
        if not self.awake_rounds:
            return 0
        return max(self.awake_rounds.values())

    @property
    def max_participation(self) -> int:
        """Max number of subproblems any node appeared in (Lemma 2.4)."""
        if not self.subproblem_participation:
            return 0
        return max(self.subproblem_participation.values())

    def energy_of(self, node: object) -> int:
        return self.awake_rounds.get(node, 0)

    def congestion_of(self, u: object, v: object) -> int:
        """Messages through the undirected edge ``{u, v}`` (both directions)."""
        return self.edge_messages.get((u, v), 0) + self.edge_messages.get((v, u), 0)

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def merge(self, other: "Metrics", *, sequential: bool = True) -> None:
        """Fold ``other`` into this accumulator.

        ``sequential=True`` (phases run back-to-back) adds round counts;
        ``sequential=False`` (phases run concurrently, e.g. independent
        connected components) takes the max of round counts.  Messages,
        congestion, energy and participation always add — they are totals
        regardless of scheduling.
        """
        if sequential:
            self.rounds += other.rounds
        else:
            self.rounds = max(self.rounds, other.rounds)
        self.total_messages += other.total_messages
        self.lost_messages += other.lost_messages
        self.messages_dropped += other.messages_dropped
        self.messages_duplicated += other.messages_duplicated
        self.nodes_crashed += other.nodes_crashed
        self.recoveries += other.recoveries
        self.edge_messages.update(other.edge_messages)
        self.awake_rounds.update(other.awake_rounds)
        self.subproblem_participation.update(other.subproblem_participation)

    def copy(self) -> "Metrics":
        out = Metrics()
        out.merge(self)
        return out

    # ------------------------------------------------------------------
    # (de)serialization — the JSONL ResultSet row format
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless, JSON-ready form of the full accumulator state.

        Counter entries are emitted as sorted ``[key..., count]`` triples /
        pairs (sorted by key repr so the output is byte-stable regardless
        of insertion order).  ``from_dict(to_dict())`` reproduces every
        recorded quantity exactly — including the per-edge and per-node
        breakdowns behind the four headline currencies — for the integer
        node labels the graph substrate uses.

        Fault meters are emitted under a ``"faults"`` sub-dict **only
        when any of them is nonzero**: a fault-free run serializes to the
        exact pre-fault byte layout, so existing stores and differential
        baselines are untouched.
        """
        out = {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "lost_messages": self.lost_messages,
            "current_round": self.current_round,
            "edge_messages": [
                [src, dst, count]
                for (src, dst), count in sorted(
                    self.edge_messages.items(), key=lambda item: repr(item[0])
                )
            ],
            "awake_rounds": [
                [node, count]
                for node, count in sorted(
                    self.awake_rounds.items(), key=lambda item: repr(item[0])
                )
            ],
            "subproblem_participation": [
                [node, count]
                for node, count in sorted(
                    self.subproblem_participation.items(), key=lambda item: repr(item[0])
                )
            ],
        }
        if (
            self.messages_dropped
            or self.messages_duplicated
            or self.nodes_crashed
            or self.recoveries
        ):
            out["faults"] = {
                "messages_dropped": self.messages_dropped,
                "messages_duplicated": self.messages_duplicated,
                "nodes_crashed": self.nodes_crashed,
                "recoveries": self.recoveries,
            }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Metrics":
        """Rebuild a :class:`Metrics` from :meth:`to_dict` output."""
        out = cls()
        out.rounds = int(data["rounds"])
        out.total_messages = int(data["total_messages"])
        out.lost_messages = int(data["lost_messages"])
        out.current_round = int(data.get("current_round", 0))
        faults = data.get("faults")
        if faults:
            out.messages_dropped = int(faults.get("messages_dropped", 0))
            out.messages_duplicated = int(faults.get("messages_duplicated", 0))
            out.nodes_crashed = int(faults.get("nodes_crashed", 0))
            out.recoveries = int(faults.get("recoveries", 0))
        for src, dst, count in data["edge_messages"]:
            out.edge_messages[(src, dst)] = count
        for node, count in data["awake_rounds"]:
            out.awake_rounds[node] = count
        for node, count in data["subproblem_participation"]:
            out.subproblem_participation[node] = count
        return out

    def summary(self) -> dict[str, int]:
        """The headline numbers as a plain dict (for tables and logs)."""
        return {
            "rounds": self.rounds,
            "messages": self.total_messages,
            "lost_messages": self.lost_messages,
            "congestion": self.max_congestion,
            "energy": self.max_energy,
            "max_participation": self.max_participation,
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"Metrics(rounds={s['rounds']}, messages={s['messages']}, "
            f"congestion={s['congestion']}, energy={s['energy']})"
        )
