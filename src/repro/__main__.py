"""Command-line front end: ``repro <command>`` / ``python -m repro <command>``.

Every subcommand is a thin constructor over the spec types of
:mod:`repro.api` — the CLI builds a :class:`~repro.api.SweepSpec` /
:class:`~repro.api.BenchSpec` / :class:`~repro.api.ReportSpec` (from
``--spec file.json``, from flags, or both — explicit flags override spec
fields) and hands it to the matching executor.  Anything the CLI can do,
a script can do with the same spec objects.

Commands
--------
``info``
    Library version and the implemented system inventory (``--json`` for a
    machine-readable map).
``demo [n]``
    Quick metered SSSP demo on a random weighted graph of ~n nodes.
``sweep``
    Run a sweep spec: ``--scenarios/--sizes/--seeds/--workers`` select the
    cross product, ``--output store.jsonl`` streams rows to a resumable
    ResultSet (re-running skips finished cells), ``--smoke`` is the fixed
    tiny CI sweep, ``--fit`` appends scaling fits, ``--report out.md``
    writes the Markdown report, ``--list`` prints registered scenarios.
    ``--shard i/k`` runs one deterministic shard of the job into its own
    store and ``--merge`` recombines the shard stores (then resumes any
    gaps); ``--max-retries``/``--task-timeout`` tune the supervised
    executor's fault policy.  Cells that kept crashing come back as
    ``failed`` rows and make the command exit 1.
``bench``
    Time the pinned benchmark subset and record ``BENCH.json``;
    ``--quick`` is the CI perf gate (non-zero exit beyond ``--factor`` x
    the recorded baseline — or when no baseline is recorded at all: a
    missing ``BENCH.json`` is a *skipped* gate, never a passed one).
``report``
    Compile recorded experiment tables into one Markdown document.
``lint``
    Static determinism/contract analysis (see :mod:`repro.lint`):
    ``repro lint src/repro`` checks paths (per-file rules plus the
    whole-program flow pass; ``--no-flow`` skips the latter),
    ``--plugins`` resolves the algorithm registry (entry points +
    ``REPRO_PLUGINS``) and lints the driver/oracle source behind it,
    ``--select/--ignore`` filter rules, ``--list-rules`` prints the
    catalog, ``--output sarif`` emits SARIF 2.1.0, ``--cache FILE``
    keeps a content-hash incremental cache.  Exit 0 clean, 1 findings,
    2 usage.

``sweep``, ``bench``, and ``report`` accept ``--spec FILE`` (a JSON spec
artifact, see ``EXPERIMENTS.md``); every subcommand accepts ``--json``
(machine-readable stdout).  Bad flags or malformed values exit 2 with a
usage message.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


# ----------------------------------------------------------------------
# flag value parsers (argparse types -> exit 2 + usage on malformed input)
# ----------------------------------------------------------------------
def _csv(text: str) -> tuple[str, ...]:
    items = tuple(part.strip() for part in text.split(",") if part.strip())
    if not items:
        raise argparse.ArgumentTypeError(f"expected a comma-separated list, got {text!r}")
    return items


def _int_csv(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _shard(text: str) -> tuple[int, int]:
    """Parse ``--shard i/k`` (1-based) into ``(shard_index, shard_count)``."""
    try:
        index_text, count_text = text.split("/")
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected i/k (e.g. 1/2), got {text!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise argparse.ArgumentTypeError(
            f"shard index must be in 1..count, got {text!r}"
        )
    return index, count


def _load_spec_file(path: str, expected_cls, parser: argparse.ArgumentParser):
    from repro.api import SpecError, load_spec

    try:
        spec = load_spec(path)
    except SpecError as exc:
        parser.error(str(exc))
    if not isinstance(spec, expected_cls):
        parser.error(
            f"--spec {path}: holds a {spec.kind!r} spec, expected {expected_cls.kind!r}"
        )
    return spec


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _scenario_catalog() -> list[dict]:
    """The registered scenario catalog, one JSON-ready dict per scenario."""
    from repro.api import get_algorithm_spec
    from repro.sim.experiments import ensure_discovered, get_scenario, list_scenarios

    ensure_discovered()
    catalog = []
    for name in list_scenarios():
        scenario = get_scenario(name)
        spec = get_algorithm_spec(scenario.algorithm)
        catalog.append({
            "name": name,
            "family": scenario.family,
            "algorithm": scenario.algorithm,
            "model": spec.model,
            "oracle": spec.oracle,
            "max_weight": scenario.max_weight,
            "latency_model": scenario.latency_model,
            "fault_model": scenario.fault_model,
            "fault_tolerance": list(spec.fault_tolerance),
            "params": dict(scenario.params),
            "param_schema": [list(pair) for pair in spec.param_schema],
            "description": scenario.description or spec.description,
        })
    return catalog


def _cmd_info(args) -> int:
    import repro

    systems = [
        ("repro.sim", "CONGEST + sleeping-model simulator with full metering"),
        ("repro.api", "spec-driven experiment API with resumable ResultSets"),
        ("repro.core.bfs", "thresholded weighted BFS (multi-source, offsets)"),
        ("repro.core.cutter", "approximate cutter (Lemma 2.1)"),
        ("repro.core.boruvka", "distributed maximal spanning forest (Thm 2.2)"),
        ("repro.core.cssp", "recursive D-thresholded CSSP (Thms 2.6/2.7)"),
        ("repro.core.sssp / apsp", "SSSP API + random-delay APSP"),
        ("repro.core.paths", "routing trees + distributed verification"),
        ("repro.baselines", "Bellman-Ford and naive distributed Dijkstra"),
        ("repro.energy.decomposition", "k-separated decomposition (Thm 3.10)"),
        ("repro.energy.covers", "sparse + layered covers (Thm 3.11, Def 3.4)"),
        ("repro.energy.low_energy_bfs", "sleeping-model BFS (Thm 3.8)"),
        ("repro.energy.bootstrap", "from-scratch BFS + energy CSSP (Thms 3.13-3.15)"),
    ]
    from repro.api import list_algorithm_specs
    from repro.sim.kernels import available_backends, current_backend

    scenarios = _scenario_catalog()
    backend = {
        "active": current_backend(),
        "available": list(available_backends()),
    }
    if args.json:
        print(json.dumps({
            "version": repro.__version__,
            "backend": backend,
            "systems": dict(systems),
            "algorithms": [spec.to_dict() for spec in list_algorithm_specs()],
            "scenarios": scenarios,
        }, indent=2))
        return 0
    print(f"repro {repro.__version__} — reproduction of Ghaffari & Trygub, PODC 2024")
    print(
        f"batch-kernel backend: {backend['active']} "
        f"(available: {', '.join(backend['available'])})"
    )
    print("\nImplemented systems:")
    for module, description in systems:
        print(f"  {module:32s} {description}")
    print(f"\nRegistered sweep scenarios ({len(scenarios)}):")
    for entry in scenarios:
        params = "".join(
            f" {name}:{type_name}" for name, type_name in entry["param_schema"]
        )
        tolerance = ",".join(entry["fault_tolerance"]) or "-"
        print(
            f"  {entry['name']:30s} {entry['model']:9s} "
            f"oracle={entry['oracle'] or '-'} faults={tolerance}{params}"
        )
    return 0


def _cmd_demo(args) -> int:
    from repro import graphs, sssp

    g = graphs.random_connected_graph(args.n, seed=1)
    g = graphs.random_weights(g, max_weight=50, seed=2)
    result = sssp(g, 0)
    exact = result.distances == g.dijkstra([0])
    if args.json:
        print(json.dumps({
            "n": g.num_nodes, "m": g.num_edges, "max_weight": g.max_weight(),
            "exact": exact, "metrics": result.metrics.summary(),
        }, indent=2))
        return 0 if exact else 1
    print(f"graph: n={g.num_nodes} m={g.num_edges} maxW={g.max_weight()}")
    print(f"exact vs oracle: {exact}")
    for key, value in result.metrics.summary().items():
        print(f"  {key:20s} {value}")
    return 0 if exact else 1


def _cmd_sweep(args, parser) -> int:
    from repro.analysis.sweeps import fit_sweep, sweep_report, sweep_table
    from repro.api import (
        SpecError,
        SweepSpec,
        is_failure,
        merge_shards,
        run_sweep_spec,
        smoke_spec,
    )
    from repro.sim.experiments import SweepError, ensure_discovered

    if args.list:
        ensure_discovered()
        if args.json:
            print(json.dumps(_scenario_catalog(), indent=2))
            return 0
        for entry in _scenario_catalog():
            tolerance = ",".join(entry["fault_tolerance"]) or "-"
            print(
                f"{entry['name']:30s} {entry['model']:9s} "
                f"faults={tolerance:15s} {entry['description']}"
            )
        return 0

    if args.smoke:
        # The fixed CI sweep: selectors are pinned, execution flags compose.
        spec = smoke_spec(workers=args.workers, output=args.output)
        title = "smoke sweep"
    else:
        spec = (
            _load_spec_file(args.spec, SweepSpec, parser) if args.spec else SweepSpec()
        )
        title = "experiment sweep"
    shard_index, shard_count = args.shard if args.shard else (None, None)
    try:
        spec = spec.replace(
            scenarios=None if args.smoke else args.scenarios,
            sizes=None if args.smoke else args.sizes,
            seeds=None if args.smoke else args.seeds,
            workers=args.workers,
            output=args.output,
            shard_index=shard_index,
            shard_count=shard_count,
            max_retries=args.max_retries,
            task_timeout=args.task_timeout,
            latency_model=args.latency_model,
            engine=args.engine,
            fault_model=args.fault_model,
            force_faults=args.force_faults,
            backend=args.backend,
        )
    except SpecError as exc:
        parser.error(str(exc))
    if spec.shard_count is not None and not spec.output:
        # An output-less shard — whether from --shard or a sharded spec
        # file — would run its partition into a discarded in-memory store:
        # machine-hours with nothing left to merge.
        parser.error("a sharded sweep needs --output (or a spec output): the derived shard store")

    if args.merge:
        # Assemble shard stores into the canonical store, then resume the
        # spec against it: cells no shard completed (or that failed
        # everywhere) run here, so the merged table is always complete.
        if args.shard:
            parser.error("--merge assembles shards; it cannot also run one (--shard)")
        if not spec.output:
            parser.error("--merge needs --output (or a spec output): the canonical store")
        import dataclasses

        spec = dataclasses.replace(spec, shard_index=None, shard_count=None)
        try:
            merged = merge_shards(spec.output)
        except SpecError as exc:
            print(f"merge error: {exc}", file=sys.stderr)
            return 2
        print(
            f"merged {len(merged)} rows"
            + (f" ({len(merged.failures())} failed cells)" if merged.failures() else "")
            + f" into {spec.output}",
            file=sys.stderr,
        )

    progress = None
    if args.progress:
        def progress(completed, total, row):
            state = " FAILED" if is_failure(row) else ""
            print(
                f"[{completed}/{total}] {row['scenario']} n={row['n']} "
                f"seed={row['seed']}{state}",
                file=sys.stderr,
            )

    try:
        rows = run_sweep_spec(spec, progress=progress)
    except (SweepError, SpecError) as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2

    failed = [row for row in rows if is_failure(row)]
    table_rows = [row for row in rows if not is_failure(row)]
    for row in failed:
        print(
            f"FAILED CELL {row['scenario']} n={row['n']} seed={row['seed']}: "
            f"{row['error']}",
            file=sys.stderr,
        )
    status = 1 if failed else 0

    if args.report:
        Path(args.report).write_text(sweep_report(table_rows, title=title))
        print(f"wrote {args.report} ({len(table_rows)} runs)")
        return status
    if args.json:
        print(json.dumps(rows, indent=2))
        return status
    print(sweep_table(table_rows, title=title))
    if spec.output:
        stored = spec.output
        if spec.shard_count is not None:
            from repro.api import shard_store_path

            stored = str(shard_store_path(spec.output, spec.shard_index, spec.shard_count))
        print(f"stored {len(rows)} rows in {stored}")
    if args.fit:
        for scenario, fit in sorted(fit_sweep(table_rows).items()):
            print(f"fit {scenario}: rounds ~ n^{fit.exponent:.2f} (r2={fit.r2:.3f})")
    return status


def _cmd_bench(args, parser) -> int:
    from repro.api import BenchSpec, SpecError, run_bench_spec

    spec = _load_spec_file(args.spec, BenchSpec, parser) if args.spec else BenchSpec()
    try:
        spec = spec.replace(
            experiments=args.experiments,
            repeats=args.repeats,
            output=args.output,
            quick=args.quick,
            factor=args.factor,
            backend=args.backend,
        )
    except SpecError as exc:
        parser.error(str(exc))

    try:
        outcome = run_bench_spec(spec)
    except SpecError as exc:
        print(f"bench error: {exc}", file=sys.stderr)
        return 2

    repeats = 1 if spec.quick else spec.repeats
    # The gate verdict is explicit, machine-readable state — a missing
    # baseline must never read as "gate passed" (it used to exit 0 with
    # zero violations, silently skipping the CI perf gate).
    gate = None
    if spec.quick:
        if outcome.baseline is None:
            gate = "skipped-no-baseline"
        elif outcome.violations:
            gate = "failed"
        else:
            gate = "ok"
    if args.json:
        print(json.dumps({
            "results": outcome.results,
            "repeats": repeats,
            "violations": list(outcome.violations),
            "baseline_path": outcome.baseline_path,
            "wrote": outcome.wrote,
            "gate": gate,
        }, indent=2))
    else:
        for name, ms in sorted(outcome.results.items()):
            print(f"{name:8s} {ms:10.1f} ms   (median of {repeats})")
        if outcome.wrote:
            print(f"wrote {outcome.wrote}")
    if not spec.quick:
        return 0
    if gate == "skipped-no-baseline":
        print(
            f"no recorded baseline at {outcome.baseline_path}: gate SKIPPED, "
            "not passed (run `repro bench` to record one)",
            file=sys.stderr,
        )
        return 1
    if outcome.violations:
        for line in outcome.violations:
            print(f"PERF REGRESSION {line}", file=sys.stderr)
        return 1
    if not args.json:
        print(f"within {spec.factor:g}x of recorded baseline ({outcome.baseline_path})")
    return 0


def _cmd_report(args, parser) -> int:
    from repro.api import ReportSpec, SpecError, run_report_spec

    spec = _load_spec_file(args.spec, ReportSpec, parser) if args.spec else ReportSpec()
    try:
        spec = spec.replace(results_dir=args.results_dir, output=args.output)
    except SpecError as exc:
        parser.error(str(exc))
    text = run_report_spec(spec)
    if args.json:
        print(json.dumps({
            "results_dir": spec.results_dir, "output": spec.output, "report": text,
        }, indent=2))
    elif spec.output:
        print(f"wrote {spec.output}")
    else:
        print(text)
    return 0


def _cmd_lint(args, parser) -> int:
    from repro.lint import (
        LintCache,
        RULES,
        lint_paths,
        lint_plugins,
        render_sarif,
        resolve_rule_selection,
    )

    output = args.output or ("json" if args.json else "text")
    if args.list_rules:
        if output == "json":
            print(json.dumps([
                {
                    "id": rule.id,
                    "name": rule.name,
                    "severity": rule.severity,
                    "summary": rule.summary,
                    "exempt_paths": list(rule.exempt_paths),
                }
                for rule in RULES
            ], indent=2))
        else:
            for rule in RULES:
                print(f"{rule.id} [{rule.name}] ({rule.severity}) {rule.summary}")
        return 0

    try:
        resolve_rule_selection(args.select, args.ignore)
    except ValueError as exc:
        parser.error(str(exc))
    if not args.paths and not args.plugins:
        parser.error("lint needs at least one path (or --plugins / --list-rules)")

    flow = not args.no_flow
    cache = LintCache(args.cache) if args.cache else None
    findings = []
    checked: list[str] = []
    stats: dict = {}
    if args.paths:
        try:
            path_findings, path_checked = lint_paths(
                args.paths, select=args.select, ignore=args.ignore,
                flow=flow, cache=cache, stats=stats,
            )
        except FileNotFoundError as exc:
            parser.error(str(exc))
        findings.extend(path_findings)
        checked.extend(path_checked)
    if args.plugins:
        plugin_stats: dict = {}
        plugin_findings, plugin_checked = lint_plugins(
            select=args.select, ignore=args.ignore, flow=flow,
            stats=plugin_stats,
        )
        # Paths already linted above stay deduplicated: a built-in driver
        # under a linted directory should not report twice.
        seen_paths = set(checked)
        for finding in plugin_findings:
            if finding.path not in seen_paths:
                findings.append(finding)
        checked.extend(plugin_checked)
        if plugin_stats.get("flow") and not stats.get("flow"):
            stats["flow"] = plugin_stats["flow"]

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    flow_stats = stats.get("flow")
    if output == "json":
        print(json.dumps({
            "version": 1,
            "files_checked": checked,
            "findings": [finding.to_dict() for finding in findings],
            "flow": flow_stats,
            "cache": stats.get("cache"),
        }, indent=2))
        return 1 if findings else 0
    if output == "sarif":
        import repro

        print(render_sarif(findings, RULES, repro.__version__))
        return 1 if findings else 0
    for finding in findings:
        print(finding.render())
    if flow_stats and flow_stats.get("unresolved_edges"):
        print(
            f"note: flow analysis left {flow_stats['unresolved_edges']} "
            "call edge(s) unresolved; F rules degrade to silence only on "
            "evidence, so unresolved callees are assumed to consume their "
            "arguments",
            file=sys.stderr,
        )
    noun = "file" if len(checked) == 1 else "files"
    if findings:
        print(f"{len(findings)} finding(s) in {len(checked)} {noun} checked")
        return 1
    print(f"{len(checked)} {noun} clean")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Ghaffari & Trygub (PODC 2024): "
        "spec-driven sweeps, benchmarks, and reports.",
        epilog="sweep, bench, and report accept --spec FILE (a JSON job "
        "spec; explicit flags override its fields); info, demo, sweep, "
        "bench, and report accept --json for machine-readable output.",
    )
    commands = parser.add_subparsers(dest="command", title="Commands", metavar="<command>")

    info = commands.add_parser("info", help="library version and system inventory")
    info.add_argument("--json", action="store_true", help="machine-readable output")

    demo = commands.add_parser("demo", help="quick metered SSSP demo")
    demo.add_argument("n", nargs="?", type=int, default=48, help="graph size (default 48)")
    demo.add_argument("--json", action="store_true", help="machine-readable output")

    sweep = commands.add_parser(
        "sweep", help="run a (scenario x size x seed) sweep spec",
        description="Run a sweep. With --output the rows stream to a JSONL "
        "ResultSet; re-running the same spec resumes, skipping finished cells.",
    )
    sweep.add_argument("--spec", metavar="FILE", help="JSON SweepSpec to start from")
    sweep.add_argument("--scenarios", type=_csv, metavar="a,b",
                       help="scenario names (default: all registered)")
    sweep.add_argument("--sizes", type=_int_csv, metavar="16,32,48", help="graph sizes")
    sweep.add_argument("--seeds", type=_int_csv, metavar="0,1", help="per-cell seeds")
    sweep.add_argument("--workers", type=int, metavar="N", help="worker processes (default 1)")
    sweep.add_argument("--output", metavar="PATH", help="JSONL ResultSet store (resumable)")
    sweep.add_argument("--shard", type=_shard, metavar="I/K",
                       help="run only shard I of K (writes PATH.shard-I-of-K.jsonl)")
    sweep.add_argument("--merge", action="store_true",
                       help="merge PATH.shard-*-of-*.jsonl into PATH, then resume any gaps")
    sweep.add_argument("--max-retries", type=int, metavar="N",
                       help="re-dispatches of a group whose worker died/stalled (default 2)")
    sweep.add_argument("--task-timeout", type=float, metavar="SECONDS",
                       help="per-group deadline before a stuck worker is killed (default: none)")
    sweep.add_argument("--latency-model", metavar="MODEL",
                       help="network model for every cell: unit, uniform:K, or random:K "
                       "(default: each scenario's own model)")
    sweep.add_argument("--engine", choices=("round", "event"),
                       help="simulation backend (default: round for unit latency, "
                       "event otherwise; 'event' on unit latency is the differential check)")
    sweep.add_argument("--fault-model", metavar="MODEL",
                       help="seeded fault plane for every cell: none, drop:P, dup:P, "
                       "crash:K@R[+restart:D], or +-compositions (default: each "
                       "scenario's own plane); non-tolerant scenarios are refused")
    sweep.add_argument("--force-faults", action="store_true", default=None,
                       help="inject --fault-model into explicitly named scenarios even "
                       "when their algorithms declare no tolerance (watch them break)")
    sweep.add_argument("--backend", choices=("scalar", "numpy"),
                       help="node-step dispatch path (default: numpy when importable); "
                       "provenance-only — rows are byte-identical either way")
    sweep.add_argument("--report", metavar="PATH", help="write a Markdown report instead of printing")
    sweep.add_argument("--fit", action="store_true", help="append per-scenario power-law fits")
    sweep.add_argument("--smoke", action="store_true", help="fixed tiny CI sweep (pins the selectors)")
    sweep.add_argument("--progress", action="store_true", help="stream per-cell progress to stderr")
    sweep.add_argument("--json", action="store_true", help="print rows as JSON")
    sweep.add_argument("--list", action="store_true", help="list registered scenarios and exit")

    bench = commands.add_parser(
        "bench", help="time the pinned benchmark subset / CI perf gate",
    )
    bench.add_argument("--spec", metavar="FILE", help="JSON BenchSpec to start from")
    bench.add_argument("--experiments", type=_csv, metavar="E2,E6",
                       help="experiments to time (default: E2,E6,E8,smoke)")
    bench.add_argument("--repeats", type=int, metavar="N", help="repetitions per experiment (default 3)")
    bench.add_argument("--output", metavar="PATH", help="baseline file (default BENCH.json)")
    bench.add_argument("--quick", action="store_true", default=None,
                       help="one repetition + gate against the recorded baseline")
    bench.add_argument("--factor", type=float, metavar="X", help="gate threshold (default 2.0)")
    bench.add_argument("--backend", choices=("scalar", "numpy"),
                       help="node-step dispatch path for the timed runs "
                       "(default: numpy when importable)")
    bench.add_argument("--json", action="store_true", help="machine-readable output")

    lint = commands.add_parser(
        "lint", help="static determinism/contract analysis",
        description="Lint source for the determinism and protocol-contract "
        "invariants the differential suites pin at run time (seeded draws, "
        "sorted iteration, JSON-safe params, Inbox/Context contracts). "
        "Suppress one finding with an inline 'repro: lint-ok[RULE] reason' "
        "comment — the reason is required. Exit 0 clean, 1 findings, 2 usage.",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (directories recurse over *.py)")
    lint.add_argument("--select", type=_csv, metavar="D101,P",
                      help="run only these rule ids or families (D, P, X)")
    lint.add_argument("--ignore", type=_csv, metavar="D103,X100",
                      help="drop these rule ids or families")
    lint.add_argument("--plugins", action="store_true",
                      help="resolve the algorithm registry (entry points + "
                      "REPRO_PLUGINS) and lint the driver/oracle source behind it")
    lint.add_argument("--no-flow", action="store_true",
                      help="skip the whole-program flow analysis (F rules); "
                      "per-file rules still run")
    lint.add_argument("--output", choices=("text", "json", "sarif"),
                      help="output format (default text; sarif emits a "
                      "SARIF 2.1.0 log for code-scanning upload)")
    lint.add_argument("--cache", metavar="FILE",
                      help="content-hash incremental cache: unchanged files "
                      "replay recorded findings; flow findings replay only "
                      "when the transitive import closure is unchanged")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--json", action="store_true", help="machine-readable output")

    report = commands.add_parser("report", help="compile recorded experiment tables")
    report.add_argument("results_dir", nargs="?", default=None,
                        help="recorded tables directory (default benchmarks/results)")
    report.add_argument("output", nargs="?", default=None,
                        help="write the Markdown here instead of printing")
    report.add_argument("--spec", metavar="FILE", help="JSON ReportSpec to start from")
    report.add_argument("--json", action="store_true", help="machine-readable output")

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    if not argv:
        parser.print_help()
        return 0
    try:
        args = parser.parse_args(argv)
        if args.command is None:
            parser.print_help()
            return 0
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "demo":
            return _cmd_demo(args)
        if args.command == "sweep":
            return _cmd_sweep(args, parser)
        if args.command == "bench":
            return _cmd_bench(args, parser)
        if args.command == "lint":
            return _cmd_lint(args, parser)
        return _cmd_report(args, parser)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; keep main()
        # callable in-process (tests, embedding) by returning the code.
        return int(exc.code or 0)


if __name__ == "__main__":
    raise SystemExit(main())
