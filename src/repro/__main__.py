"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library version and the implemented system inventory.
``demo [n]``
    Run a quick SSSP demo on a random weighted graph of ~n nodes (default
    48) and print the complexity metrics.
``report [results_dir] [output]``
    Compile the recorded benchmark tables into one Markdown report
    (defaults: ``benchmarks/results`` -> stdout).
``sweep [options]``
    Run a registered experiment sweep (scenario registry x sizes x seeds)
    across worker processes and print the tidy result table.

    Options: ``--scenarios a,b`` (default: all registered),
    ``--sizes 16,32,48``, ``--seeds 0``, ``--workers N`` (default 1),
    ``--fit`` (append per-scenario power-law fits of rounds vs n),
    ``--smoke`` (fixed tiny sweep for CI; ignores the other selectors),
    ``--output PATH`` (write a Markdown report instead of printing),
    ``--list`` (print the registered scenario names and exit).
``bench [options]``
    Time the pinned fast benchmark subset (E2/E6/E8 + the smoke sweep) and
    record ``BENCH.json`` ({experiment: median_ms}) so the perf trajectory
    is tracked PR-over-PR.

    Options: ``--experiments E2,E6`` (default: E2,E6,E8,smoke),
    ``--repeats N`` (default 3), ``--output PATH`` (default BENCH.json),
    ``--quick`` (one repetition, no file write unless ``--output`` is
    given, non-zero exit if any experiment exceeds 2x the recorded
    baseline — the CI perf smoke gate), ``--factor X`` (gate threshold).
"""

from __future__ import annotations

import sys
from pathlib import Path


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__} — reproduction of Ghaffari & Trygub, PODC 2024")
    print("\nImplemented systems:")
    systems = [
        ("repro.sim", "CONGEST + sleeping-model simulator with full metering"),
        ("repro.core.bfs", "thresholded weighted BFS (multi-source, offsets)"),
        ("repro.core.cutter", "approximate cutter (Lemma 2.1)"),
        ("repro.core.boruvka", "distributed maximal spanning forest (Thm 2.2)"),
        ("repro.core.cssp", "recursive D-thresholded CSSP (Thms 2.6/2.7)"),
        ("repro.core.sssp / apsp", "SSSP API + random-delay APSP"),
        ("repro.core.paths", "routing trees + distributed verification"),
        ("repro.baselines", "Bellman-Ford and naive distributed Dijkstra"),
        ("repro.energy.decomposition", "k-separated decomposition (Thm 3.10)"),
        ("repro.energy.covers", "sparse + layered covers (Thm 3.11, Def 3.4)"),
        ("repro.energy.low_energy_bfs", "sleeping-model BFS (Thm 3.8)"),
        ("repro.energy.bootstrap", "from-scratch BFS + energy CSSP (Thms 3.13-3.15)"),
    ]
    for module, description in systems:
        print(f"  {module:32s} {description}")
    return 0


def _cmd_demo(argv: list[str]) -> int:
    from repro import graphs, sssp

    n = int(argv[0]) if argv else 48
    g = graphs.random_connected_graph(n, seed=1)
    g = graphs.random_weights(g, max_weight=50, seed=2)
    print(f"graph: n={g.num_nodes} m={g.num_edges} maxW={g.max_weight()}")
    result = sssp(g, 0)
    exact = result.distances == g.dijkstra([0])
    print(f"exact vs oracle: {exact}")
    for key, value in result.metrics.summary().items():
        print(f"  {key:20s} {value}")
    return 0 if exact else 1


def _cmd_report(argv: list[str]) -> int:
    from repro.analysis.report import compile_report

    results = Path(argv[0]) if argv else Path("benchmarks/results")
    text = compile_report(results)
    if len(argv) > 1:
        Path(argv[1]).write_text(text)
        print(f"wrote {argv[1]}")
    else:
        print(text)
    return 0


def _cmd_sweep(argv: list[str]) -> int:
    from repro.analysis.sweeps import fit_sweep, sweep_report, sweep_table
    from repro.sim.experiments import list_scenarios, run_sweep, smoke_sweep

    options = {
        "scenarios": None,
        "sizes": (16, 32, 48),
        "seeds": (0,),
        "workers": 1,
        "fit": False,
        "smoke": False,
        "output": None,
    }
    it = iter(argv)
    for arg in it:
        value_of = {"--scenarios", "--sizes", "--seeds", "--workers", "--output"}
        value = next(it, None) if arg in value_of else None
        if arg in value_of and value is None:
            print(f"sweep option {arg} requires a value", file=sys.stderr)
            return 2
        try:
            if arg == "--smoke":
                options["smoke"] = True
            elif arg == "--fit":
                options["fit"] = True
            elif arg == "--scenarios":
                options["scenarios"] = value.split(",")
            elif arg == "--sizes":
                options["sizes"] = tuple(int(x) for x in value.split(","))
            elif arg == "--seeds":
                options["seeds"] = tuple(int(x) for x in value.split(","))
            elif arg == "--workers":
                options["workers"] = int(value)
            elif arg == "--output":
                options["output"] = value
            elif arg == "--list":
                for name in list_scenarios():
                    print(name)
                return 0
            else:
                print(f"unknown sweep option {arg!r}", file=sys.stderr)
                return 2
        except ValueError:
            print(f"sweep option {arg}: expected integers, got {value!r}", file=sys.stderr)
            return 2

    from repro.sim.experiments import SweepError

    try:
        if options["smoke"]:
            rows = smoke_sweep(workers=options["workers"])
            title = "smoke sweep"
        else:
            rows = run_sweep(
                options["scenarios"],
                sizes=options["sizes"],
                seeds=options["seeds"],
                workers=options["workers"],
            )
            title = "experiment sweep"
    except SweepError as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2

    if options["output"]:
        Path(options["output"]).write_text(sweep_report(rows, title=title))
        print(f"wrote {options['output']} ({len(rows)} runs)")
        return 0
    print(sweep_table(rows, title=title))
    if options["fit"]:
        for scenario, fit in sorted(fit_sweep(rows).items()):
            print(f"fit {scenario}: rounds ~ n^{fit.exponent:.2f} (r2={fit.r2:.3f})")
    return 0


def _cmd_bench(argv: list[str]) -> int:
    from repro import bench

    options = {
        "experiments": None,
        "repeats": 3,
        "output": None,
        "quick": False,
        "factor": 2.0,
    }
    it = iter(argv)
    for arg in it:
        value_of = {"--experiments", "--repeats", "--output", "--factor"}
        value = next(it, None) if arg in value_of else None
        if arg in value_of and value is None:
            print(f"bench option {arg} requires a value", file=sys.stderr)
            return 2
        try:
            if arg == "--quick":
                options["quick"] = True
            elif arg == "--experiments":
                options["experiments"] = value.split(",")
            elif arg == "--repeats":
                options["repeats"] = int(value)
            elif arg == "--output":
                options["output"] = value
            elif arg == "--factor":
                options["factor"] = float(value)
            else:
                print(f"unknown bench option {arg!r}", file=sys.stderr)
                return 2
        except ValueError:
            print(f"bench option {arg}: bad value {value!r}", file=sys.stderr)
            return 2

    repeats = 1 if options["quick"] else options["repeats"]
    try:
        results = bench.run_bench(options["experiments"], repeats=repeats)
    except ValueError as exc:
        print(f"bench error: {exc}", file=sys.stderr)
        return 2
    for name, ms in sorted(results.items()):
        print(f"{name:8s} {ms:10.1f} ms   (median of {repeats})")

    baseline_path = options["output"] or "BENCH.json"
    if options["quick"]:
        # Gate mode: compare against the recorded baseline, write nothing
        # (unless an explicit output path was given).
        baseline = bench.load_bench(baseline_path)
        if options["output"]:
            bench.write_bench(results, options["output"])
            print(f"wrote {options['output']}")
        if baseline is None:
            print(f"no recorded baseline at {baseline_path}; nothing to gate against")
            return 0
        violations = bench.compare_to_baseline(
            results, baseline, factor=options["factor"]
        )
        if violations:
            for line in violations:
                print(f"PERF REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"within {options['factor']:g}x of recorded baseline ({baseline_path})")
        return 0
    target = bench.write_bench(results, baseline_path)
    print(f"wrote {target}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "info":
        return _cmd_info()
    if command == "demo":
        return _cmd_demo(rest)
    if command == "report":
        return _cmd_report(rest)
    if command == "sweep":
        return _cmd_sweep(rest)
    if command == "bench":
        return _cmd_bench(rest)
    print(
        f"unknown command {command!r}; try: info, demo, report, sweep, bench",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
