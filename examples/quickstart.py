#!/usr/bin/env python
"""Quickstart: exact distributed SSSP with complexity metering.

Builds a random weighted network, runs the paper's recursive CSSP-based
SSSP (Theorem 2.6), verifies it against a sequential Dijkstra oracle, and
prints the four complexity currencies the paper is about.

Run:  python examples/quickstart.py
"""

from repro import graphs, sssp
from repro.analysis import render_table


def main() -> None:
    network = graphs.random_connected_graph(64, extra_edge_prob=0.06, seed=7)
    network = graphs.random_weights(network, max_weight=100, seed=8)
    print(f"network: {network.num_nodes} nodes, {network.num_edges} edges, "
          f"max weight {network.max_weight()}")

    result = sssp(network, source=0)

    oracle = network.dijkstra([0])
    exact = all(result.distances[u] == oracle[u] for u in network.nodes())
    print(f"distances exact vs Dijkstra oracle: {exact}")

    farthest = max(
        (u for u in network.nodes() if oracle[u] != float("inf")),
        key=lambda u: oracle[u],
    )
    print(f"farthest node: {farthest} at weighted distance {oracle[farthest]}")

    print()
    print(render_table(
        "SSSP complexity (Theorem 2.6: ~O(n) time, ~O(m) messages, polylog congestion)",
        ["metric", "value"],
        [
            ["rounds", result.rounds],
            ["total messages", result.messages],
            ["max per-edge congestion", result.congestion],
            ["messages per edge", round(result.messages / network.num_edges, 1)],
            ["max subproblems per node (Lemma 2.4)", result.metrics.max_participation],
        ],
    ))


if __name__ == "__main__":
    main()
