#!/usr/bin/env python
"""Sensor network: battery-bounded BFS to a gateway (the paper's motivation).

A grid of battery-powered sensors must learn hop distances (routes) to a
gateway.  Keeping every radio on for the whole protocol is what kills
sensor batteries — the sleeping model charges a node only for rounds it is
awake, and Theorem 3.8/3.13 says BFS needs only polylog awake rounds per
node.

This example builds the layered sparse cover from scratch, runs the
sleeping-model BFS, and contrasts per-node awake time against the
always-awake baseline (where energy == running time for every node).

Run:  python examples/sensor_network.py
"""

from repro import graphs
from repro.analysis import render_table
from repro.energy import low_energy_bfs_from_scratch
from repro.sim import Metrics


def main() -> None:
    side = 7
    field = graphs.grid_graph(side, side)
    gateway = (side // 2) * side + side // 2  # center of the field
    print(f"sensor field: {side}x{side} grid, gateway at node {gateway}")

    construction, query = Metrics(), Metrics()
    distances, cover = low_energy_bfs_from_scratch(
        field, {gateway: 0},
        construction_metrics=construction, query_metrics=query,
    )

    exact = distances == field.hop_distances([gateway])
    print(f"routes exact: {exact}")
    print(f"cover: {len(cover.levels)} levels, radii {cover.radii}")

    awake = sorted(query.awake_rounds.values())
    rows = [
        ["query rounds (sleeping model)", query.rounds],
        ["max awake rounds (energy complexity)", query.max_energy],
        ["median awake rounds", awake[len(awake) // 2]],
        ["awake fraction of worst sensor", round(query.max_energy / query.rounds, 3)],
        ["always-awake baseline fraction", 1.0],
        ["messages lost to sleeping radios", query.lost_messages],
        ["construction rounds (synchronous phase)", construction.rounds],
    ]
    print()
    print(render_table("energy profile (Theorems 3.8/3.13)", ["metric", "value"], rows))

    # Per-sensor battery view: nodes far from the gateway sleep through
    # most of the protocol until the wavefront approaches them.
    sample = [0, gateway, side * side - 1]
    print()
    print(render_table(
        "per-sensor awake rounds",
        ["sensor", "hop distance to gateway", "awake rounds"],
        [[u, distances[u], query.energy_of(u)] for u in sample],
    ))


if __name__ == "__main__":
    main()
