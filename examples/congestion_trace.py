#!/usr/bin/env python
"""Congestion and awake-time profiles over an execution (TracingMetrics).

Shows *when* the network is busy: the per-round message load of the
paper's SSSP versus Bellman-Ford, and the awake-fraction timeline of the
sleeping-model BFS (the visual form of "each node is awake only polylog
rounds").

Run:  python examples/congestion_trace.py
"""

from repro import graphs, run_bellman_ford
from repro.analysis import render_table
from repro.core.cssp import cssp
from repro.energy import low_energy_bfs_from_scratch
from repro.sim import TracingMetrics


def sparkline(values, width: int = 40) -> str:
    """Cheap text sparkline for a profile."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    top = max(values) or 1
    step = max(1, len(values) // width)
    cells = [values[i] for i in range(0, len(values), step)]
    return "".join(blocks[min(9, int(9 * v / top))] for v in cells)


def main() -> None:
    g = graphs.random_weights(
        graphs.random_connected_graph(32, extra_edge_prob=0.08, seed=5), 9, seed=6
    )
    print(f"instance: n={g.num_nodes}, m={g.num_edges}")

    rows = []
    for name, run in (
        ("cssp-sssp", lambda t: cssp(g, {0: 0}, metrics=t)),
        ("bellman-ford", lambda t: run_bellman_ford(g, 0, metrics=t)),
    ):
        trace = TracingMetrics()
        run(trace)
        peak_round, peak_load = trace.peak_round_load()
        rows.append([name, trace.rounds, trace.total_messages, peak_load,
                     round(trace.total_messages / max(1, trace.rounds), 1)])
    print()
    print(render_table(
        "per-round load: burstiness of each algorithm",
        ["algorithm", "rounds", "messages", "peak round load", "avg msgs/round"],
        rows,
    ))

    # Sleeping-model BFS awake timeline on a path: the wavefront of
    # activity travels — at any instant most sensors sleep.
    path = graphs.path_graph(48)
    query = TracingMetrics()
    low_energy_bfs_from_scratch(path, {0: 0}, query_metrics=query)
    profile = query.awake_fraction_profile(path.num_nodes, buckets=40)
    print()
    print("sleeping-model BFS: fraction of nodes awake over time")
    print("  " + sparkline([int(1000 * x) for x in profile]))
    print(f"  mean awake fraction: {sum(profile) / len(profile):.3f} "
          f"(always-awake baseline: 1.000)")


if __name__ == "__main__":
    main()
