#!/usr/bin/env python
"""APSP routing tables via n concurrent SSSPs (the Section 1.1 implication).

Because the paper's SSSP has polylog per-edge congestion, one instance per
source can run concurrently under random-delay scheduling [LMR94, Gha15] —
this is how the paper matches Bernstein–Nanongkai's ~O(n) APSP with a
modular algorithm whose only randomness is the delays.

The example computes full routing tables for a small ISP-like topology,
reports the concurrent schedule's makespan versus running the instances
back-to-back, and verifies the per-round edge load stays within the
O(log n) capacity that makes the schedule legal CONGEST.

Run:  python examples/apsp_routing.py
"""

from repro import apsp, graphs
from repro.analysis import render_table


def main() -> None:
    # A lollipop-ish ISP: a dense core with access chains hanging off it.
    topology = graphs.random_weights(
        graphs.barbell_graph(6, 8), max_weight=20, seed=42
    )
    print(f"topology: {topology.num_nodes} routers, {topology.num_edges} links")

    result = apsp(topology, seed=1)

    # Spot-check routing symmetry and a couple of distances.
    nodes = sorted(topology.nodes())
    sample = [(nodes[0], nodes[-1]), (nodes[2], nodes[-3])]
    for a, b in sample:
        assert result.distance(a, b) == result.distance(b, a)
        print(f"dist({a} <-> {b}) = {result.distance(a, b)}")

    sequential = sum(r.rounds for r in result.per_source.values())
    schedule = result.schedule
    print()
    print(render_table(
        "random-delay schedule (n concurrent SSSP instances)",
        ["metric", "value"],
        [
            ["instances", len(result.per_source)],
            ["sequential total rounds", sequential],
            ["concurrent makespan", schedule.makespan],
            ["speedup", round(sequential / schedule.makespan, 1)],
            ["max per-slot edge load", schedule.max_slot_load],
            ["per-round capacity (O(log n))", schedule.capacity],
            ["schedule feasible", schedule.feasible],
        ],
    ))


if __name__ == "__main__":
    main()
