#!/usr/bin/env python
"""Baseline showdown: why the classic approaches lose (Section 1.1).

Runs the same SSSP workload through three scenario-registry entries —
the paper's recursive CSSP-based SSSP, distributed Bellman-Ford, and the
naive distributed Dijkstra — across a sweep of sizes, by building a
``repro.api.SweepSpec`` and handing it to ``run_sweep_spec`` (every run
self-verifies against the sequential Dijkstra oracle inside its algorithm
driver).  The point is the
*growth*: Bellman-Ford's congestion column scales with n (so n concurrent
instances for APSP would need Theta(n) bandwidth per edge), Dijkstra's
rounds scale with n*D, while the paper's algorithm keeps congestion polylog
in n.

Run:  PYTHONPATH=src python examples/baseline_showdown.py
"""

from repro.analysis import fit_sweep, sweep_table
from repro.api import SweepSpec, run_sweep_spec

SCENARIOS = ["sssp/er", "bellman-ford/er", "dijkstra/er"]
SIZES = (16, 24, 32, 48)


def main() -> None:
    spec = SweepSpec(scenarios=tuple(SCENARIOS), sizes=SIZES, seeds=(0,), workers=2)
    rows = run_sweep_spec(spec)
    print(sweep_table(
        rows,
        "SSSP head-to-head (every run verified exact against the oracle)",
    ))
    print()
    for metric in ("rounds", "messages", "congestion"):
        fits = fit_sweep(rows, y=metric)
        for name in SCENARIOS:
            fit = fits[name]
            print(f"  {metric:10s} {name:18s} ~ n^{fit.exponent:.2f} (r2={fit.r2:.3f})")
    print()
    print("Reading: at one fixed size the recursion's polylog constants can")
    print("still exceed Bellman-Ford's congestion — the claims are about")
    print("growth.  Bellman-Ford's congestion fits n^1.0 almost exactly,")
    print("Dijkstra pays ~n*D rounds, while the paper's algorithm keeps")
    print("congestion sublinear.  See benchmark E3/E8 for the full tables.")


if __name__ == "__main__":
    main()
