#!/usr/bin/env python
"""Baseline showdown: why the classic approaches lose (Section 1.1).

Runs the same SSSP instance through three algorithms:

* distributed Bellman-Ford — optimal O(n) time but Theta(mn) messages and
  Theta(n) congestion (every reached node re-broadcasts every round);
* naive distributed Dijkstra — each iteration finds the global minimum via
  a convergecast, paying O(nD) time and Theta(n) congestion at the root;
* the paper's recursive CSSP-based SSSP — ~O(n) time, ~O(m) messages,
  polylog congestion, which is what makes n concurrent instances (APSP)
  possible.

Run:  python examples/baseline_showdown.py
"""

from repro import graphs, run_bellman_ford, run_distributed_dijkstra, sssp
from repro.analysis import render_table
from repro.sim import Metrics


def main() -> None:
    g = graphs.random_weights(
        graphs.random_connected_graph(48, extra_edge_prob=0.1, seed=3),
        max_weight=50, seed=4,
    )
    print(f"instance: n={g.num_nodes}, m={g.num_edges}")
    oracle = g.dijkstra([0])

    rows = []
    result = sssp(g, 0)
    assert result.distances == oracle
    rows.append(["cssp-sssp (paper)", result.rounds, result.messages,
                 result.congestion])

    m = Metrics()
    assert run_bellman_ford(g, 0, metrics=m) == oracle
    rows.append(["bellman-ford (naive)", m.rounds, m.total_messages, m.max_congestion])

    m = Metrics()
    assert run_bellman_ford(g, 0, send_on_change=True, metrics=Metrics()) == oracle
    m = Metrics()
    assert run_distributed_dijkstra(g, 0, metrics=m) == oracle
    rows.append(["distributed dijkstra", m.rounds, m.total_messages, m.max_congestion])

    print()
    print(render_table(
        "SSSP head-to-head (all exact; shapes match Section 1.1's analysis)",
        ["algorithm", "rounds", "messages", "max congestion"],
        rows,
    ))
    print()
    print("Reading: at one fixed size the recursion's polylog constants can")
    print("still exceed Bellman-Ford's congestion — the claims are about")
    print("*growth*. Bellman-Ford's congestion column scales exactly with n")
    print("(so n concurrent instances for APSP would need Theta(n) bandwidth")
    print("per edge), Dijkstra's rounds scale with n*D, while the paper's")
    print("algorithm keeps congestion polylog in n. See benchmark E3/E8 for")
    print("the fitted exponents (n^1.0 for Bellman-Ford vs ~n^0.5 for ours).")


if __name__ == "__main__":
    main()
